#include "atpg/podem.hpp"

#include "sim/gate_eval.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

/// Non-controlling value on an input of @p type (the assignment that lets a
/// difference on a sibling input pass through).
bool noncontrolling(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
      return true;  // 1 lets AND-family propagate
    case GateType::kOr:
    case GateType::kNor:
      return false;  // 0 lets OR-family propagate
    default:
      return true;  // XOR-family and routing gates: any definite value
  }
}

/// Does a difference at this gate invert on the way through @p type?
bool inverts(GateType type) {
  return type == GateType::kNot || type == GateType::kNand ||
         type == GateType::kNor || type == GateType::kXnor;
}

}  // namespace

Podem::Podem(const Netlist& nl, const ScanPlan& plan)
    : nl_(&nl), plan_(&plan), scoap_(compute_scoap(nl)) {
  XH_REQUIRE(nl.finalized(), "PODEM requires a finalized netlist");
  good_.assign(nl.gate_count(), Lv::kX);
  bad_.assign(nl.gate_count(), Lv::kX);
  assignment_.assign(nl.gate_count(), Lv::kX);
  observers_ = nl.scan_dffs();
  XH_REQUIRE(!observers_.empty(), "no scanned flops to observe");
}

void Podem::simulate(const StuckFault& fault) {
  for (const GateId id : nl_->topo_order()) {
    const Gate& g = nl_->gate(id);
    Lv gv;
    if (g.type == GateType::kInput) {
      gv = assignment_[id];
    } else if (g.type == GateType::kDff) {
      gv = g.scanned ? assignment_[id] : Lv::kX;  // unscanned = power-up X
    } else {
      gv = evaluate_combinational(*nl_, id, good_);
    }
    good_[id] = gv;

    Lv bv;
    if (g.type == GateType::kInput) {
      bv = assignment_[id];
    } else if (g.type == GateType::kDff) {
      bv = g.scanned ? assignment_[id] : Lv::kX;
    } else {
      bv = evaluate_combinational(*nl_, id, bad_);
    }
    if (id == fault.gate) bv = fault.stuck_at_one ? Lv::k1 : Lv::k0;
    bad_[id] = bv;
  }
}

bool Podem::detected(const StuckFault& fault) const {
  // A fault on a scanned flop's Q pin is observed on shift-out: detected as
  // soon as the good machine captures the complement of the stuck value.
  const Gate& fg = nl_->gate(fault.gate);
  if (fg.type == GateType::kDff && fg.scanned) {
    const Lv gv = absorb_z(good_[fg.fanin[0]]);
    if (is_definite(gv) && (gv == Lv::k1) != fault.stuck_at_one) return true;
  }
  for (const GateId dff : observers_) {
    const GateId d = nl_->gate(dff).fanin[0];
    const Lv gv = absorb_z(good_[d]);
    const Lv bv = absorb_z(bad_[d]);
    if (is_definite(gv) && is_definite(bv) && gv != bv) return true;
  }
  return false;
}

bool Podem::conflict(const StuckFault& fault) const {
  // Excitation impossible: the fault site already carries the stuck value in
  // the good machine (three-valued simulation is monotone — more assignments
  // cannot change a definite value).
  const Lv site = good_[fault.gate];
  if (is_definite(site) &&
      (site == Lv::k1) == fault.stuck_at_one) {
    return true;
  }
  // Observation impossible: every observer already definite and equal. The
  // shift-out observer of a faulty scanned flop compares the good capture
  // against the stuck value itself.
  const Gate& fg = nl_->gate(fault.gate);
  if (fg.type == GateType::kDff && fg.scanned) {
    const Lv gv = absorb_z(good_[fg.fanin[0]]);
    const bool settled_equal =
        is_definite(gv) && (gv == Lv::k1) == fault.stuck_at_one;
    if (!settled_equal) return false;
  }
  for (const GateId dff : observers_) {
    const GateId d = nl_->gate(dff).fanin[0];
    const Lv gv = absorb_z(good_[d]);
    const Lv bv = absorb_z(bad_[d]);
    if (!(is_definite(gv) && is_definite(bv) && gv == bv)) return false;
  }
  return true;
}

bool Podem::x_path_exists(const StuckFault& fault) const {
  // Forward reachability from every difference point through gates whose
  // output is still unresolved (X in either machine). If no such path can
  // touch an observed D input, three-valued monotonicity guarantees no
  // further assignment detects the fault.
  std::vector<bool> visited(nl_->gate_count(), false);
  std::vector<GateId> stack;

  const auto open_output = [&](GateId id) {
    return !is_definite(good_[id]) || !is_definite(bad_[id]);
  };
  const auto is_diff = [&](GateId id) {
    const Lv gv = absorb_z(good_[id]);
    const Lv bv = absorb_z(bad_[id]);
    return is_definite(gv) && is_definite(bv) && gv != bv;
  };

  // Observed nets: D inputs of scanned flops.
  std::vector<bool> observed(nl_->gate_count(), false);
  for (const GateId dff : observers_) observed[nl_->gate(dff).fanin[0]] = true;

  const auto seed = [&](GateId id) {
    if (!visited[id]) {
      visited[id] = true;
      stack.push_back(id);
    }
  };
  // Seeds: the fault site (even while unexcited — excitation may still
  // happen if the site is open) and every current difference point.
  if (open_output(fault.gate) || is_diff(fault.gate)) seed(fault.gate);
  for (GateId id = 0; id < nl_->gate_count(); ++id) {
    if (is_diff(id)) seed(id);
  }

  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    if (observed[id]) return true;
    for (const GateId next : nl_->fanout(id)) {
      if (visited[next]) continue;
      const Gate& g = nl_->gate(next);
      if (g.type == GateType::kDff) {
        // The edge INTO a scanned flop is the observation itself (covered by
        // observed[] on the D net); the flop's output is next-cycle state.
        continue;
      }
      if (open_output(next) || is_diff(next)) seed(next);
    }
  }
  return false;
}

std::optional<std::pair<GateId, bool>> Podem::objective(
    const StuckFault& fault) {
  // Phase 1 — excite: drive the fault site to the complement of the stuck
  // value.
  if (!is_definite(good_[fault.gate])) {
    return std::make_pair(fault.gate, !fault.stuck_at_one);
  }

  // Phase 2 — propagate: among D-frontier gates (definite good/bad
  // difference on a fanin, unresolved output), prefer the most observable
  // one (min SCOAP CO) and within it the cheapest X input to sensitize.
  GateId best_input = kNoGate;
  GateType best_type = GateType::kBuf;
  std::uint32_t best_co = kScoapInf;
  std::uint32_t best_cc = kScoapInf;
  for (const GateId id : nl_->topo_order()) {
    const Gate& g = nl_->gate(id);
    if (!is_combinational(g.type) || g.type == GateType::kDff) continue;
    const bool output_open =
        !is_definite(good_[id]) || !is_definite(bad_[id]);
    if (!output_open) continue;
    bool has_diff_input = false;
    for (const GateId f : g.fanin) {
      const Lv gv = absorb_z(good_[f]);
      const Lv bv = absorb_z(bad_[f]);
      if (is_definite(gv) && is_definite(bv) && gv != bv) {
        has_diff_input = true;
        break;
      }
    }
    if (!has_diff_input) continue;
    const std::uint32_t gate_co = scoap_.co[id];
    for (const GateId f : g.fanin) {
      if (is_definite(absorb_z(good_[f]))) continue;
      const std::uint32_t cc = scoap_.cc(f, noncontrolling(g.type));
      if (gate_co < best_co || (gate_co == best_co && cc < best_cc)) {
        best_co = gate_co;
        best_cc = cc;
        best_input = f;
        best_type = g.type;
      }
    }
  }
  if (best_input != kNoGate) {
    return std::make_pair(best_input, noncontrolling(best_type));
  }
  return std::nullopt;
}

std::optional<std::pair<GateId, bool>> Podem::backtrace(GateId gate,
                                                        bool value) {
  for (std::size_t guard = 0; guard <= nl_->gate_count(); ++guard) {
    const Gate& g = nl_->gate(gate);
    if (g.type == GateType::kInput) return std::make_pair(gate, value);
    if (g.type == GateType::kDff) {
      if (g.scanned) return std::make_pair(gate, value);
      return std::nullopt;  // unscanned flop: uncontrollable
    }
    if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
      return std::nullopt;
    }
    // Follow the cheapest X-valued fanin (SCOAP-guided) toward the inputs,
    // flipping the target value through inverting gates.
    const bool next_value = inverts(g.type) ? !value : value;
    GateId next = kNoGate;
    std::uint32_t next_cost = kScoapInf;
    for (const GateId f : g.fanin) {
      if (is_definite(absorb_z(good_[f]))) continue;
      const std::uint32_t cost = scoap_.cc(f, next_value);
      if (next == kNoGate || cost < next_cost) {
        next = f;
        next_cost = cost;
      }
    }
    if (next == kNoGate) return std::nullopt;  // fully determined already
    value = next_value;
    gate = next;
  }
  return std::nullopt;  // unreachable on acyclic combinational logic
}

std::optional<TestPattern> Podem::generate(const StuckFault& fault,
                                           std::size_t backtrack_limit,
                                           std::uint64_t fill_seed,
                                           bool fill_dont_cares) {
  XH_REQUIRE(fault.gate < nl_->gate_count(), "fault gate out of range");
  stats_ = {};
  std::fill(assignment_.begin(), assignment_.end(), Lv::kX);

  std::vector<Assignment> stack;
  simulate(fault);

  const auto backtrack = [&]() -> bool {
    ++stats_.backtracks;
    while (!stack.empty() && stack.back().tried_both) {
      assignment_[stack.back().input] = Lv::kX;
      stack.pop_back();
    }
    if (stack.empty()) return false;
    Assignment& top = stack.back();
    top.value = !top.value;
    top.tried_both = true;
    assignment_[top.input] = top.value ? Lv::k1 : Lv::k0;
    simulate(fault);
    return true;
  };

  for (;;) {
    if (detected(fault)) {
      TestPattern pattern;
      Rng fill(fill_seed);
      pattern.pi.reserve(nl_->inputs().size());
      const auto fill_value = [&]() {
        return fill_dont_cares ? (fill.chance(0.5) ? Lv::k1 : Lv::k0)
                               : Lv::kX;
      };
      for (const GateId pi : nl_->inputs()) {
        const Lv v = assignment_[pi];
        pattern.pi.push_back(is_definite(v) ? v : fill_value());
      }
      pattern.scan_in.assign(plan_->geometry().num_cells(),
                             fill_dont_cares ? Lv::k0 : Lv::kX);
      for (std::size_t cell = 0; cell < pattern.scan_in.size(); ++cell) {
        const GateId dff = plan_->dff_at(cell);
        if (dff == kNoGate) continue;
        const Lv v = assignment_[dff];
        pattern.scan_in[cell] = is_definite(v) ? v : fill_value();
      }
      return pattern;
    }

    if (stats_.backtracks > backtrack_limit) {
      stats_.aborted = true;
      return std::nullopt;
    }

    bool need_backtrack = conflict(fault) || !x_path_exists(fault);
    std::optional<std::pair<GateId, bool>> target;
    if (!need_backtrack) {
      const auto obj = objective(fault);
      if (!obj) {
        need_backtrack = true;
      } else {
        target = backtrace(obj->first, obj->second);
        if (!target) need_backtrack = true;
      }
    }

    if (need_backtrack) {
      if (!backtrack()) return std::nullopt;  // exhausted: untestable
      continue;
    }

    XH_ASSERT(!is_definite(assignment_[target->first]),
              "backtrace must end on an unassigned input");
    stack.push_back({target->first, target->second, false});
    assignment_[target->first] = target->second ? Lv::k1 : Lv::k0;
    simulate(fault);
    ++stats_.decisions;
  }
}

}  // namespace xh
