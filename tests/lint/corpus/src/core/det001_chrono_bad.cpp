// corpus: XH-DET-001 must fire on std::chrono clock reads outside bench/.
#include <chrono>

auto tick() { return std::chrono::steady_clock::now(); }
