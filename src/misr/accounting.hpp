// Closed-form control-bit and test-time accounting — the exact equations the
// paper evaluates Table 1 with.
//
//   X-masking only [5]:        bits = L · C · P
//   X-canceling only [12]:     bits = m · q · X / (m − q)
//   proposed hybrid:           bits = L · C · #partitions + m · q · X_leak / (m − q)
//   normalized test time [11]: T = 1 + n · x · q / (m − q)
//
// where L = longest chain length, C = chains, P = patterns, X = unknowns
// entering the MISR, n = chains, x = X-density of what shifts into the MISR.
#pragma once

#include <cstddef>
#include <cstdint>

#include "misr/x_cancel.hpp"
#include "response/geometry.hpp"

namespace xh {

/// Control bits for conventional per-cycle X-masking [5].
[[nodiscard]] std::uint64_t x_masking_only_bits(const ScanGeometry& geometry,
                                                std::size_t num_patterns);

/// Control bits for an X-canceling-only MISR [12] (real-valued; the paper
/// rounds only final sums). @p total_x is the number of X's shifted in.
[[nodiscard]] double x_canceling_only_bits(const MisrConfig& cfg,
                                           std::uint64_t total_x);

/// Number of scan-shift halts for the time-multiplexed scheme.
[[nodiscard]] double x_canceling_stops(const MisrConfig& cfg,
                                       std::uint64_t total_x);

/// Control bits for the proposed hybrid: per-partition masks + canceling of
/// the leaked X's.
[[nodiscard]] double hybrid_bits(const ScanGeometry& geometry,
                                 std::size_t num_partitions,
                                 const MisrConfig& cfg,
                                 std::uint64_t leaked_x);

/// Rounds a real-valued bit count up to whole bits (57.5 → 58), as the paper
/// does at the end of its Section 4 example.
[[nodiscard]] std::uint64_t round_bits(double bits);

/// Normalized total test time of the time-multiplexed X-canceling MISR [11]
/// relative to plain X-masking: 1 + n·x·q/(m−q). @p x_density is the density
/// of X's among the bits shifted into the MISR (fraction, not percent).
[[nodiscard]] double normalized_test_time(std::size_t num_chains,
                                          double x_density,
                                          const MisrConfig& cfg);

/// MEASURED normalized test time from a real session: every stop halts scan
/// shifting for q cycles (one selective-XOR readout per X-free combination),
/// so T = (shift_cycles + stops·q) / shift_cycles. Converges to the closed
/// form above as the X stream becomes uniform — tested against it.
[[nodiscard]] double measured_normalized_test_time(const XCancelResult& result,
                                                   const MisrConfig& cfg);

/// The shadow-register X-canceling MISR variant [11]: the MISR state is
/// copied to a shadow register and read out while scan continues, so there
/// is no halt (normalized time 1.0) — but the selective-XOR control data now
/// needs its own tester bandwidth. The paper excludes this variant from its
/// comparison for that reason; the cost is modeled here to make the
/// exclusion quantitative.
struct ShadowRegisterCost {
  double normalized_test_time = 1.0;
  /// Control bits per scan-shift cycle the tester must sustain on average —
  /// i.e. extra channels when > 1.
  double control_bits_per_cycle = 0.0;
  std::size_t extra_channels = 0;  // ceil of the above
};

[[nodiscard]] ShadowRegisterCost shadow_register_cost(
    const MisrConfig& cfg, std::uint64_t total_x, std::uint64_t shift_cycles);

}  // namespace xh
