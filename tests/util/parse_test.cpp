#include "util/parse.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xh {
namespace {

TEST(ParseU64, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseU64, RejectsJunkThatAtollAccepts) {
  // std::atoll("12abc") == 12 and std::atoll("foo") == 0 — exactly the
  // silent coercions these helpers exist to kill.
  EXPECT_THROW(parse_u64("12abc"), std::invalid_argument);
  EXPECT_THROW(parse_u64("foo"), std::invalid_argument);
  EXPECT_THROW(parse_u64(""), std::invalid_argument);
  EXPECT_THROW(parse_u64(" 7"), std::invalid_argument);
  EXPECT_THROW(parse_u64("7 "), std::invalid_argument);
  EXPECT_THROW(parse_u64("-1"), std::invalid_argument);
  EXPECT_THROW(parse_u64("+1"), std::invalid_argument);
  EXPECT_THROW(parse_u64("0x10"), std::invalid_argument);
}

TEST(ParseU64, RejectsOverflow) {
  EXPECT_THROW(parse_u64("18446744073709551616"), std::invalid_argument);
  EXPECT_THROW(parse_u64("99999999999999999999999"), std::invalid_argument);
}

TEST(ParseU64, ErrorMessageNamesTheOffendingText) {
  try {
    parse_u64("12abc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("12abc"), std::string::npos);
  }
}

TEST(ParseSize, MatchesU64) {
  EXPECT_EQ(parse_size("123"), 123u);
  EXPECT_THROW(parse_size("12.5"), std::invalid_argument);
}

TEST(ParseF64, AcceptsDecimalsAndScientific) {
  EXPECT_DOUBLE_EQ(parse_f64("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_f64("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_f64("-2.5"), -2.5);
}

TEST(ParseF64, RejectsJunkNanAndInfinity) {
  EXPECT_THROW(parse_f64(""), std::invalid_argument);
  EXPECT_THROW(parse_f64("0.5x"), std::invalid_argument);
  EXPECT_THROW(parse_f64("nan"), std::invalid_argument);
  EXPECT_THROW(parse_f64("inf"), std::invalid_argument);
  EXPECT_THROW(parse_f64("1e999"), std::invalid_argument);
}

}  // namespace
}  // namespace xh
