#include "sim/gate_eval.hpp"

#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "sim/comb_sim.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

TEST(GateEval, RejectsSources) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId ff = nl.add_dff(a, "ff");
  nl.mark_output(ff);
  nl.finalize();
  std::vector<Lv> values(nl.gate_count(), Lv::k0);
  EXPECT_THROW(evaluate_combinational(nl, a, values), std::invalid_argument);
  EXPECT_THROW(evaluate_combinational(nl, ff, values), std::invalid_argument);
}

TEST(GateEval, VariadicGates) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId g_and = nl.add_gate(GateType::kAnd, {a, b, c}, "g_and");
  const GateId g_xor = nl.add_gate(GateType::kXor, {a, b, c}, "g_xor");
  nl.mark_output(g_and);
  nl.finalize();

  std::vector<Lv> values(nl.gate_count(), Lv::k1);
  EXPECT_EQ(evaluate_combinational(nl, g_and, values), Lv::k1);
  EXPECT_EQ(evaluate_combinational(nl, g_xor, values), Lv::k1);
  values[b] = Lv::k0;
  EXPECT_EQ(evaluate_combinational(nl, g_and, values), Lv::k0);
  EXPECT_EQ(evaluate_combinational(nl, g_xor, values), Lv::k0);
  values[c] = Lv::kX;
  EXPECT_EQ(evaluate_combinational(nl, g_and, values), Lv::k0)
      << "controlling 0 beats X";
  EXPECT_EQ(evaluate_combinational(nl, g_xor, values), Lv::kX);
}

// Property: the standalone evaluator agrees with CombSim on every gate of a
// random circuit (CombSim is built on it, but via its own source handling —
// this pins the contract).
TEST(GateEvalProperty, AgreesWithCombSim) {
  GeneratorConfig cfg;
  cfg.seed = 51;
  cfg.num_gates = 120;
  cfg.num_buses = 2;
  const Netlist nl = generate_circuit(cfg);
  CombSim sim(nl);
  Rng rng(5);
  for (const GateId pi : nl.inputs()) {
    sim.set_input(pi, rng.chance(0.3) ? Lv::kX
                                      : (rng.chance(0.5) ? Lv::k1 : Lv::k0));
  }
  sim.set_all_state(Lv::kX);
  sim.evaluate();

  std::vector<Lv> values(nl.gate_count());
  for (GateId id = 0; id < nl.gate_count(); ++id) values[id] = sim.value(id);
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    const GateType type = nl.gate(id).type;
    if (type == GateType::kInput || type == GateType::kDff) continue;
    EXPECT_EQ(evaluate_combinational(nl, id, values), sim.value(id))
        << nl.gate(id).name;
  }
}

}  // namespace
}  // namespace xh
