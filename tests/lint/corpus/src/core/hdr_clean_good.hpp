// corpus: a well-formed header — leading comment, then #pragma once, then
// code; using-declarations (not directives) are fine.
#pragma once

#include <cstddef>

namespace corpus {

using size_type = std::size_t;

inline size_type identity(size_type n) { return n; }

}  // namespace corpus
