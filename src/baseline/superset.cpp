#include "baseline/superset.hpp"

#include <algorithm>
#include <unordered_map>

#include "misr/accounting.hpp"
#include "util/check.hpp"

namespace xh {

SupersetResult superset_x_canceling(const XMatrix& xm,
                                    const SupersetConfig& cfg) {
  cfg.misr.validate();
  XH_REQUIRE(cfg.max_growth >= 0.0, "max_growth must be non-negative");

  // Compact column space: only X-capturing cells matter.
  const auto& xc = xm.x_cells();
  std::unordered_map<std::size_t, std::size_t> dense;
  dense.reserve(xc.size());
  for (std::size_t i = 0; i < xc.size(); ++i) dense.emplace(xc[i], i);

  // Transpose to per-pattern X lists (dense cell indices).
  std::vector<std::vector<std::uint32_t>> per_pattern(xm.num_patterns());
  for (const std::size_t cell : xc) {
    const auto col = static_cast<std::uint32_t>(dense.at(cell));
    for (const std::size_t p : xm.patterns_of(cell).set_bits()) {
      per_pattern[p].push_back(col);
    }
  }

  SupersetResult result;
  BitVec uni(xc.size());
  SupersetGroup group;
  std::uint64_t member_x_sum = 0;

  const auto close_group = [&] {
    if (group.patterns.empty()) return;
    group.superset_x = uni.count();
    group.lost_observations =
        group.superset_x * group.patterns.size() - member_x_sum;
    result.lost_observations += group.lost_observations;
    result.control_bits += x_canceling_only_bits(cfg.misr, group.superset_x);
    result.groups.push_back(std::move(group));
    group = {};
    uni.fill(false);
    member_x_sum = 0;
  };

  for (std::size_t p = 0; p < xm.num_patterns(); ++p) {
    const auto& cols = per_pattern[p];
    std::size_t growth = 0;
    for (const auto c : cols) {
      if (!uni.get(c)) ++growth;
    }
    const bool fits =
        group.patterns.empty() ||
        static_cast<double>(growth) <=
            cfg.max_growth * static_cast<double>(std::max<std::size_t>(
                                 1, cols.size()));
    if (!fits) close_group();
    for (const auto c : cols) uni.set(c);
    group.patterns.push_back(p);
    member_x_sum += cols.size();
  }
  close_group();
  return result;
}

}  // namespace xh
