// XH-IPA-002 non-firing fixture: a token is in scope but the posted work
// cannot block (no sleeps, no blockable resolved callee), so there is
// nothing for cancellation to interrupt.
#include "service/ipa_seam.hpp"

namespace fixture {

void pump_quick(WorkPool& pool, const CancelToken& token) {
  if (token.stop_requested()) return;
  pool.post([] { counter_bump(); });
}

}  // namespace fixture
