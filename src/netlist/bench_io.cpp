#include "netlist/bench_io.hpp"

#include <cctype>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace xh {
namespace {

struct Definition {
  std::string op;
  std::vector<std::string> operands;
  int line = 0;
};

[[noreturn]] void parse_error(int line, const std::string& msg) {
  throw std::invalid_argument("bench parse error at line " +
                              std::to_string(line) + ": " + msg);
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

/// Parses "OP(a, b, c)" into op + operand list.
bool parse_call(const std::string& text, std::string& op,
                std::vector<std::string>& operands) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    return false;
  }
  if (trim(text.substr(close + 1)).size() != 0) return false;
  op = upper(trim(text.substr(0, open)));
  operands.clear();
  const std::string args = text.substr(open + 1, close - open - 1);
  std::string cur;
  bool saw_comma = false;
  for (const char c : args) {
    if (c == ',') {
      operands.push_back(trim(cur));
      cur.clear();
      saw_comma = true;
    } else {
      cur.push_back(c);
    }
  }
  cur = trim(cur);
  // A trailing comma leaves an empty final operand — push it so the
  // emptiness check below rejects "OP(a, b,)" instead of silently
  // parsing it as two operands. Zero-operand calls ("CONST0()") stay valid.
  if (!cur.empty() || saw_comma) operands.push_back(cur);
  for (const auto& o : operands) {
    if (o.empty()) return false;
  }
  return true;
}

GateType combinational_op(const std::string& op, int line) {
  if (op == "AND") return GateType::kAnd;
  if (op == "NAND") return GateType::kNand;
  if (op == "OR") return GateType::kOr;
  if (op == "NOR") return GateType::kNor;
  if (op == "XOR") return GateType::kXor;
  if (op == "XNOR") return GateType::kXnor;
  if (op == "NOT" || op == "INV") return GateType::kNot;
  if (op == "BUF" || op == "BUFF") return GateType::kBuf;
  if (op == "MUX") return GateType::kMux;
  if (op == "TRISTATE") return GateType::kTristate;
  if (op == "BUS") return GateType::kBus;
  if (op == "CONST0" || op == "GND") return GateType::kConst0;
  if (op == "CONST1" || op == "VDD") return GateType::kConst1;
  parse_error(line, "unknown gate type '" + op + "'");
}

/// A declared name together with the line that declared it, so later
/// semantic errors (duplicate input, undefined output) can cite the
/// declaration instead of "line 0".
struct Declared {
  std::string name;
  int line = 0;
};

Netlist read_bench_impl(std::istream& in, std::string name) {
  std::vector<Declared> input_names;
  std::vector<Declared> output_names;
  std::map<std::string, Definition> defs;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      std::string op;
      std::vector<std::string> operands;
      if (!parse_call(line, op, operands) || operands.size() != 1) {
        parse_error(line_no, "expected INPUT(x) / OUTPUT(x) / name = GATE(...)");
      }
      if (op == "INPUT") {
        input_names.push_back({operands[0], line_no});
      } else if (op == "OUTPUT") {
        output_names.push_back({operands[0], line_no});
      } else {
        parse_error(line_no, "unknown declaration '" + op + "'");
      }
      continue;
    }

    const std::string lhs = trim(line.substr(0, eq));
    Definition def;
    def.line = line_no;
    if (lhs.empty()) parse_error(line_no, "missing signal name before '='");
    if (!parse_call(line.substr(eq + 1), def.op, def.operands)) {
      parse_error(line_no, "malformed gate expression");
    }
    if (!defs.emplace(lhs, std::move(def)).second) {
      parse_error(line_no, "signal '" + lhs + "' defined twice");
    }
  }
  if (in.bad()) {
    throw std::invalid_argument("bench parse error: stream I/O failure after " +
                                std::to_string(line_no) + " lines");
  }
  if (input_names.empty() && output_names.empty() && defs.empty()) {
    parse_error(line_no, "empty bench description (no declarations found)");
  }

  Netlist nl(std::move(name));
  std::map<std::string, GateId> ids;

  for (const auto& decl : input_names) {
    const std::string& in_name = decl.name;
    if (ids.count(in_name) != 0) {
      parse_error(decl.line, "input '" + in_name + "' declared twice");
    }
    if (defs.count(in_name) != 0) {
      parse_error(defs.at(in_name).line,
                  "signal '" + in_name + "' is both INPUT and gate output");
    }
    ids.emplace(in_name, nl.add_input(in_name));
  }

  // DFF placeholders first so sequential feedback resolves.
  for (const auto& [sig, def] : defs) {
    if (def.op == "DFF" || def.op == "NDFF") {
      if (def.operands.size() != 1) {
        parse_error(def.line, "DFF takes exactly one operand");
      }
      ids.emplace(sig, nl.add_dff_placeholder(sig, def.op == "DFF"));
    }
  }

  // Emit combinational gates by iterative DFS over the dependency graph.
  enum class Mark { kUnseen, kVisiting, kDone };
  std::map<std::string, Mark> marks;

  auto resolve = [&](const std::string& root, int root_ref_line) -> GateId {
    struct Frame {
      std::string sig;
      std::size_t next_operand = 0;
      int ref_line = 0;  // the line whose expression references sig
    };
    std::vector<Frame> stack{{root, 0, root_ref_line}};
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto known = ids.find(top.sig);
      if (known != ids.end()) {
        stack.pop_back();
        continue;
      }
      const auto def_it = defs.find(top.sig);
      if (def_it == defs.end()) {
        parse_error(top.ref_line,
                    "signal '" + top.sig + "' is used but never defined");
      }
      const Definition& def = def_it->second;
      if (top.next_operand == 0) {
        Mark& m = marks[top.sig];
        if (m == Mark::kVisiting) {
          parse_error(def.line, "combinational cycle through '" + top.sig + "'");
        }
        m = Mark::kVisiting;
      }
      if (top.next_operand < def.operands.size()) {
        const std::string& dep = def.operands[top.next_operand++];
        if (ids.find(dep) == ids.end()) stack.push_back({dep, 0, def.line});
        continue;
      }
      // All operands available: create the gate.
      std::vector<GateId> fanin;
      fanin.reserve(def.operands.size());
      for (const auto& dep : def.operands) fanin.push_back(ids.at(dep));
      const GateType type = combinational_op(def.op, def.line);
      try {
        ids.emplace(top.sig, nl.add_gate(type, std::move(fanin), top.sig));
      } catch (const std::invalid_argument& e) {
        parse_error(def.line, e.what());
      }
      marks[top.sig] = Mark::kDone;
      stack.pop_back();
    }
    return ids.at(root);
  };

  for (const auto& [sig, def] : defs) {
    if (def.op == "DFF" || def.op == "NDFF") continue;
    resolve(sig, def.line);
  }
  for (const auto& [sig, def] : defs) {
    if (def.op == "DFF" || def.op == "NDFF") {
      nl.connect_dff(ids.at(sig), resolve(def.operands[0], def.line));
    }
  }
  for (const auto& decl : output_names) {
    const auto it = ids.find(decl.name);
    if (it == ids.end()) {
      parse_error(decl.line, "output '" + decl.name + "' is never defined");
    }
    nl.mark_output(it->second);
  }

  nl.finalize();
  return nl;
}

}  // namespace

Netlist read_bench(std::istream& in, std::string name, Diagnostics* diags) {
  try {
    return read_bench_impl(in, std::move(name));
  } catch (const std::invalid_argument& e) {
    diag_report(diags, DiagSeverity::kError, DiagKind::kNetlistParseError,
                "bench reader", e.what());
    throw;
  }
}

Netlist read_bench_string(const std::string& text, std::string name,
                          Diagnostics* diags) {
  std::istringstream is(text);
  return read_bench(is, std::move(name), diags);
}

void write_bench(const Netlist& nl, std::ostream& out) {
  out << "# " << nl.name() << " — written by xhybrid\n";
  for (const GateId id : nl.inputs()) {
    out << "INPUT(" << nl.gate(id).name << ")\n";
  }
  for (const GateId id : nl.outputs()) {
    out << "OUTPUT(" << nl.gate(id).name << ")\n";
  }
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kInput) continue;
    std::string op;
    switch (g.type) {
      case GateType::kDff: op = g.scanned ? "DFF" : "NDFF"; break;
      case GateType::kNot: op = "NOT"; break;
      case GateType::kBuf: op = "BUF"; break;
      case GateType::kConst0: op = "CONST0"; break;
      case GateType::kConst1: op = "CONST1"; break;
      default: op = upper(std::string(gate_type_name(g.type))); break;
    }
    out << g.name << " = " << op << '(';
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      if (i > 0) out << ", ";
      out << nl.gate(g.fanin[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(nl, os);
  return os.str();
}

}  // namespace xh
