#include "fault/transition.hpp"

#include "util/check.hpp"

namespace xh {
namespace {

std::uint64_t def0_mask(const LvPlane& p) { return ~p.p1 & ~p.p0; }
std::uint64_t def1_mask(const LvPlane& p) { return ~p.p1 & p.p0; }

std::uint64_t lane_mask(std::size_t lanes) {
  return lanes >= 64 ? ~0ULL : ((1ULL << lanes) - 1);
}

}  // namespace

std::string transition_fault_name(const Netlist& nl,
                                  const TransitionFault& fault) {
  return nl.gate(fault.gate).name +
         (fault.slow_to_rise ? "/str" : "/stf");
}

std::vector<TransitionFault> enumerate_transition_faults(const Netlist& nl) {
  std::vector<TransitionFault> out;
  for (const StuckFault& sf : enumerate_faults(nl)) {
    // enumerate_faults yields each site twice (sa0/sa1); map onto STR/STF.
    out.push_back({sf.gate, !sf.stuck_at_one});
  }
  return out;
}

TransitionFaultSimulator::TransitionFaultSimulator(const Netlist& nl,
                                                   const ScanPlan& plan)
    : nl_(&nl), plan_(&plan) {
  XH_REQUIRE(nl.finalized(), "transition simulation needs a finalized netlist");
}

TransitionSimResult TransitionFaultSimulator::run(
    const std::vector<TestPattern>& patterns,
    const std::vector<TransitionFault>& faults) const {
  XH_REQUIRE(!patterns.empty(), "need at least one pattern");
  TransitionSimResult result;
  result.faults = faults;
  result.detected.assign(faults.size(), false);
  std::vector<bool> launched(faults.size(), false);

  ParallelSim good(*nl_);
  ParallelSim bad(*nl_);

  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t lanes = std::min<std::size_t>(64, patterns.size() - base);
    const std::uint64_t active = lane_mask(lanes);

    // ---- launch frame (fault-free; shift clock is slow) -------------------
    for (std::size_t i = 0; i < nl_->inputs().size(); ++i) {
      LvPlane plane;
      for (std::size_t s = 0; s < lanes; ++s) {
        plane.set(s, patterns[base + s].pi[i]);
      }
      good.set_input(nl_->inputs()[i], plane);
      bad.set_input(nl_->inputs()[i], plane);
    }
    good.set_all_state(Lv::kX);
    for (std::size_t cell = 0; cell < plan_->geometry().num_cells(); ++cell) {
      const GateId dff = plan_->dff_at(cell);
      if (dff == kNoGate) continue;
      LvPlane plane;
      for (std::size_t s = 0; s < lanes; ++s) {
        plane.set(s, patterns[base + s].scan_in[cell]);
      }
      good.set_state(dff, plane);
    }
    good.evaluate();

    // Launch-frame site values and the functional capture into ALL flops.
    std::vector<LvPlane> frame1(nl_->gate_count());
    for (GateId id = 0; id < nl_->gate_count(); ++id) {
      frame1[id] = good.plane(id);
    }
    std::vector<LvPlane> launched_state(nl_->gate_count());
    for (const GateId dff : nl_->dffs()) {
      launched_state[dff] = good.next_state_plane(dff);
    }

    // ---- capture frame, fault-free ----------------------------------------
    good.clock();
    good.evaluate();
    std::vector<LvPlane> frame2(nl_->gate_count());
    for (GateId id = 0; id < nl_->gate_count(); ++id) {
      frame2[id] = good.plane(id);
    }
    std::vector<LvPlane> good_capture(nl_->gate_count());
    for (const GateId dff : nl_->scan_dffs()) {
      good_capture[dff] = good.next_state_plane(dff);
    }

    // ---- per fault: capture frame with the delayed site -------------------
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (result.detected[fi]) continue;
      const GateId site = faults[fi].gate;
      const bool str = faults[fi].slow_to_rise;
      const std::uint64_t launch =
          (str ? def0_mask(frame1[site]) & def1_mask(frame2[site])
               : def1_mask(frame1[site]) & def0_mask(frame2[site])) &
          active;
      if (launch == 0) continue;
      launched[fi] = true;

      for (const GateId dff : nl_->dffs()) {
        bad.set_state(dff, launched_state[dff]);
      }
      bad.inject(
          ParallelSim::Fault{site, str ? Lv::k0 : Lv::k1, launch});
      bad.evaluate();
      for (const GateId dff : nl_->scan_dffs()) {
        const LvPlane& g = good_capture[dff];
        const LvPlane& b = bad.next_state_plane(dff);
        // Definite in both machines and different, in any active lane.
        const std::uint64_t differs =
            ((def0_mask(g) & def1_mask(b)) | (def1_mask(g) & def0_mask(b))) &
            active;
        if (differs != 0) {
          result.detected[fi] = true;
          ++result.num_detected;
          break;
        }
      }
      bad.inject(std::nullopt);
    }
  }

  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (!launched[fi]) ++result.never_launched;
  }
  return result;
}

ResponseMatrix TransitionFaultSimulator::capture_frame_response(
    const std::vector<TestPattern>& patterns) const {
  XH_REQUIRE(!patterns.empty(), "need at least one pattern");
  ResponseMatrix response(plan_->geometry(), patterns.size());
  ParallelSim sim(*nl_);
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t lanes = std::min<std::size_t>(64, patterns.size() - base);
    for (std::size_t i = 0; i < nl_->inputs().size(); ++i) {
      LvPlane plane;
      for (std::size_t s = 0; s < lanes; ++s) {
        plane.set(s, patterns[base + s].pi[i]);
      }
      sim.set_input(nl_->inputs()[i], plane);
    }
    sim.set_all_state(Lv::kX);
    for (std::size_t cell = 0; cell < plan_->geometry().num_cells(); ++cell) {
      const GateId dff = plan_->dff_at(cell);
      if (dff == kNoGate) continue;
      LvPlane plane;
      for (std::size_t s = 0; s < lanes; ++s) {
        plane.set(s, patterns[base + s].scan_in[cell]);
      }
      sim.set_state(dff, plane);
    }
    sim.evaluate();  // launch
    sim.clock();     // functional capture into every flop
    sim.evaluate();  // at-speed frame
    for (std::size_t cell = 0; cell < plan_->geometry().num_cells(); ++cell) {
      const GateId dff = plan_->dff_at(cell);
      if (dff == kNoGate) continue;
      const LvPlane& next = sim.next_state_plane(dff);
      for (std::size_t s = 0; s < lanes; ++s) {
        response.set(base + s, cell, next.get(s));
      }
    }
  }
  return response;
}

}  // namespace xh
