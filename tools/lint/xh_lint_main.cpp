// xh_lint — project lint CLI. Scans files or directory trees and exits
// non-zero when any finding survives suppression, so CI can gate on it.
//
//   xh_lint [--root DIR] [--list-rules] PATH...
//
// Paths are reported relative to --root (default: the current directory);
// rule applicability (src/ vs bench/, core/engine) keys off that relative
// path, so run it from the repository root or pass --root explicitly.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint_core.hpp"

namespace fs = std::filesystem;

namespace {

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string relative_slash_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) rel = p;
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : xh::lint::rules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "error: --root requires a directory argument\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: xh_lint [--root DIR] [--list-rules] PATH...\n";
      return 0;
    }
    inputs.emplace_back(arg);
  }
  if (inputs.empty()) {
    std::cerr << "usage: xh_lint [--root DIR] [--list-rules] PATH...\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    if (fs::is_directory(in)) {
      for (const auto& entry : fs::recursive_directory_iterator(in)) {
        if (entry.is_regular_file() && has_source_extension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(in)) {
      files.push_back(in);
    } else {
      std::cerr << "error: no such file or directory: " << in << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t findings = 0;
  for (const fs::path& path : files) {
    xh::lint::SourceFile file;
    file.path = relative_slash_path(path, root);
    file.content = read_file(path);

    // For out-of-line members iterating containers declared in the class:
    // harvest the same-stem header next to a .cpp.
    std::string header_content;
    const std::string* header = nullptr;
    if (path.extension() == ".cpp" || path.extension() == ".cc") {
      fs::path sib = path;
      sib.replace_extension(".hpp");
      if (fs::is_regular_file(sib)) {
        header_content = read_file(sib);
        header = &header_content;
      }
    }

    for (const auto& f : xh::lint::scan_file(file, header)) {
      std::cout << xh::lint::to_string(f) << "\n";
      ++findings;
    }
  }

  if (findings != 0) {
    std::cout << findings << " finding" << (findings == 1 ? "" : "s")
              << " (suppress with // xh-lint: allow(RULE) and a justification)"
              << "\n";
    return 1;
  }
  return 0;
}
