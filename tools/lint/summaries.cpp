#include "lint/summaries.hpp"

#include <algorithm>
#include <deque>
#include <tuple>

#include "lint/dataflow.hpp"
#include "lint/text_scan.hpp"

namespace xh::lint {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && s[b] == ' ') ++b;
  while (e > b && s[e - 1] == ' ') --e;
  return s.substr(b, e - b);
}

/// True when @p text calls @p method through @p var (`var.method(` or
/// `var->method(`).
bool member_call_on(const std::string& text, const std::string& var,
                    const std::string& method) {
  for (std::size_t p = find_ident(text, var); p != std::string::npos;
       p = find_ident(text, var, p + 1)) {
    std::size_t q = p + var.size();
    if (q < text.size() && text[q] == '.') {
      ++q;
    } else if (q + 1 < text.size() && text[q] == '-' && text[q + 1] == '>') {
      q += 2;
    } else {
      continue;
    }
    if (text.compare(q, method.size(), method) != 0) continue;
    std::size_t r = q + method.size();
    if (r < text.size() && is_ident_char(text[r])) continue;
    while (r < text.size() && text[r] == ' ') ++r;
    if (r < text.size() && text[r] == '(') return true;
  }
  return false;
}

/// One scope-guard declaration inside a function body.
struct GuardDecl {
  std::size_t node = 0;           // declaring CFG node
  std::set<std::string> mutexes;  // qualified mutex names guarded
  bool defer = false;             // declared with std::defer_lock
};

bool lock_tag(const std::string& arg) {
  return ends_with(arg, "defer_lock") || ends_with(arg, "adopt_lock") ||
         ends_with(arg, "try_to_lock");
}

/// Guard variable name -> declaration. Unnamed guards (scoped_lock
/// temporaries) get synthetic keys; they can never be .unlock()ed anyway.
std::map<std::string, GuardDecl> collect_guards(const CgFunction& fn) {
  std::map<std::string, GuardDecl> out;
  std::size_t anon = 0;
  for (std::size_t n = 0; n < fn.cfg.nodes.size(); ++n) {
    const std::string& t = fn.cfg.nodes[n].text;
    for (const char* kind : {"lock_guard", "scoped_lock", "unique_lock"}) {
      const std::size_t p = find_ident(t, kind);
      if (p == std::string::npos) continue;
      std::size_t q = p + std::string(kind).size();
      if (q < t.size() && t[q] == '<') {  // template argument list
        int depth = 1;
        ++q;
        while (q < t.size() && depth > 0) {
          if (t[q] == '<') ++depth;
          if (t[q] == '>') --depth;
          ++q;
        }
      }
      while (q < t.size() && t[q] == ' ') ++q;
      std::string var;
      if (q < t.size() && is_ident_char(t[q])) {
        const std::size_t vb = q;
        while (q < t.size() && is_ident_char(t[q])) ++q;
        var = t.substr(vb, q - vb);
        while (q < t.size() && t[q] == ' ') ++q;
      }
      if (q >= t.size() || (t[q] != '(' && t[q] != '{')) continue;
      const char open = t[q];
      const char close = open == '(' ? ')' : '}';
      const std::size_t ab = q + 1;
      int depth = 1;
      ++q;
      while (q < t.size() && depth > 0) {
        if (t[q] == open) ++depth;
        if (t[q] == close) --depth;
        ++q;
      }
      if (depth != 0) continue;
      GuardDecl gd;
      gd.node = n;
      // Split the initializer at top-level commas.
      std::string args = t.substr(ab, q - 1 - ab);
      std::vector<std::string> parts;
      int ad = 0;
      std::size_t start = 0;
      for (std::size_t i = 0; i <= args.size(); ++i) {
        if (i == args.size() || (args[i] == ',' && ad == 0)) {
          parts.push_back(trim(args.substr(start, i - start)));
          start = i + 1;
        } else if (args[i] == '(' || args[i] == '<' || args[i] == '{') {
          ++ad;
        } else if (args[i] == ')' || args[i] == '>' || args[i] == '}') {
          --ad;
        }
      }
      for (const std::string& part : parts) {
        if (part.empty()) continue;
        if (lock_tag(part)) {
          if (ends_with(part, "defer_lock")) gd.defer = true;
          continue;
        }
        gd.mutexes.insert(qualify_mutex(fn, part));
      }
      if (gd.mutexes.empty()) continue;
      if (var.empty()) var = "<anon" + std::to_string(anon++) + ">";
      out.emplace(var, gd);
    }
  }
  return out;
}

/// mutex -> (guard scope depth, declaring node). The depth is the
/// declaring node's scope_locks (the CFG builder assigns a guard
/// declaration its own incremented count), so "scope ended" is visible as
/// entering a node with a smaller scope_locks.
using Held = std::map<std::string, std::pair<int, std::size_t>>;

Held intersect(const Held& a, const Held& b) {
  Held out;
  for (const auto& [mu, info] : a) {
    const auto it = b.find(mu);
    if (it == b.end()) continue;
    // On depth disagreement keep the deeper entry: it dies at the next
    // scope boundary, the conservative direction for must-hold.
    out[mu] = info.first >= it->second.first ? info : it->second;
  }
  return out;
}

struct HoldAnalysis {
  std::vector<Held> in;
  std::vector<Held> out;
};

HoldAnalysis analyze_hold(const CgFunction& fn,
                          const std::map<std::string, GuardDecl>& guards) {
  const auto& nodes = fn.cfg.nodes;
  std::set<std::size_t> decl_nodes;
  for (const auto& [var, gd] : guards) {
    (void)var;
    decl_nodes.insert(gd.node);
  }

  HoldAnalysis ha;
  ha.in.assign(nodes.size(), {});
  ha.out.assign(nodes.size(), {});
  std::vector<bool> reached(nodes.size(), false);
  reached[FunctionCfg::kEntry] = true;

  const auto transfer = [&](std::size_t n, Held h) {
    const std::string& t = nodes[n].text;
    for (const auto& [var, gd] : guards) {
      if (member_call_on(t, var, "unlock")) {
        for (const std::string& mu : gd.mutexes) h.erase(mu);
      }
    }
    for (const auto& [var, gd] : guards) {
      const bool at_decl = gd.node == n && !gd.defer;
      const bool relock = member_call_on(t, var, "lock");
      if (!at_decl && !relock) continue;
      for (const std::string& mu : gd.mutexes) {
        h[mu] = {nodes[gd.node].scope_locks, gd.node};
      }
    }
    return h;
  };

  std::deque<std::size_t> work = {FunctionCfg::kEntry};
  std::vector<bool> queued(nodes.size(), false);
  queued[FunctionCfg::kEntry] = true;
  while (!work.empty()) {
    const std::size_t n = work.front();
    work.pop_front();
    queued[n] = false;
    ha.out[n] = transfer(n, ha.in[n]);
    for (const std::size_t v : nodes[n].succ) {
      Held flowed;
      for (const auto& [mu, info] : ha.out[n]) {
        // Scope death: the exit node is synthetic (a return executes
        // UNDER its locks; RAII releases after), so no kill there.
        // Elsewhere an entry dies when control enters a shallower scope,
        // or a SIBLING scope: a different guard declaration at the same
        // depth means the previous same-depth scope has closed.
        if (v != FunctionCfg::kExit) {
          if (info.first > nodes[v].scope_locks) continue;
          if (decl_nodes.count(v) != 0 &&
              nodes[v].scope_locks == info.first && info.second != v) {
            continue;
          }
        }
        flowed[mu] = info;
      }
      const Held next =
          reached[v] ? intersect(ha.in[v], flowed) : flowed;
      if (!reached[v] || next != ha.in[v]) {
        reached[v] = true;
        ha.in[v] = next;
        if (!queued[v]) {
          queued[v] = true;
          work.push_back(v);
        }
      }
    }
  }
  return ha;
}

/// Per-function facts that do not depend on other functions' summaries.
struct LocalFacts {
  std::vector<std::string> sync_text;  // node text, lambda bodies blanked
  std::map<std::string, GuardDecl> guards;
  std::vector<Held> held_in;  // must-hold at node entry
  Held held_at_exit;
  bool returns_status = false;
  bool auto_return = false;  // `auto`/empty return type: propagate through
                             // `return callee(...)`
  bool consults_token = false;
  bool can_block = false;
  bool escapes_to_pool = false;
  std::set<std::string> locks_acquired;
};

LocalFacts local_facts(const CgFunction& fn) {
  LocalFacts L;
  const auto& nodes = fn.cfg.nodes;
  L.sync_text.resize(nodes.size());
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    std::string t = nodes[n].text;
    for (const auto& [b, e] : lambda_body_ranges(t)) {
      for (std::size_t i = b; i < e && i < t.size(); ++i) t[i] = ' ';
    }
    L.sync_text[n] = std::move(t);
  }
  L.guards = collect_guards(fn);
  HoldAnalysis ha = analyze_hold(fn, L.guards);
  L.held_in = std::move(ha.in);
  L.held_at_exit = L.held_in[FunctionCfg::kExit];

  L.returns_status = status_type(fn.cfg.return_type);
  L.auto_return =
      fn.cfg.return_type == "auto" || fn.cfg.return_type.empty();

  const std::vector<std::string> tokens = token_names(fn.cfg);
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const std::string& t = L.sync_text[n];
    if (has_member_call(t, "stop_requested") ||
        has_member_call(t, "expired")) {
      L.consults_token = true;
    }
    for (const std::string& tok : tokens) {
      if (is_use(t, tok)) L.consults_token = true;
    }
    if (blocking_text(t) || nodes[n].loop_unbounded) L.can_block = true;
    if (has_member_call(t, "post")) L.escapes_to_pool = true;
  }

  for (const auto& [var, gd] : L.guards) {
    // A defer_lock guard acquires only if .lock() is actually called.
    bool acquires = !gd.defer;
    if (!acquires) {
      for (std::size_t n = 0; n < nodes.size() && !acquires; ++n) {
        acquires = member_call_on(nodes[n].text, var, "lock");
      }
    }
    if (acquires) {
      L.locks_acquired.insert(gd.mutexes.begin(), gd.mutexes.end());
    }
  }
  return L;
}

bool summary_equal(const FunctionSummary& a, const FunctionSummary& b) {
  return a.returns_status == b.returns_status &&
         a.consults_token == b.consults_token && a.can_block == b.can_block &&
         a.escapes_callable_to_pool == b.escapes_callable_to_pool &&
         a.locks_acquired == b.locks_acquired &&
         a.locks_held_at_exit == b.locks_held_at_exit &&
         a.lock_pairs == b.lock_pairs;
}

/// Qualified mutexes acquired AT node @p n (guard declarations and
/// explicit guard-variable .lock() calls).
std::set<std::string> acquired_at(const CgFunction& fn, const LocalFacts& L,
                                  std::size_t n) {
  std::set<std::string> out;
  for (const auto& [var, gd] : L.guards) {
    if ((gd.node == n && !gd.defer) ||
        member_call_on(fn.cfg.nodes[n].text, var, "lock")) {
      out.insert(gd.mutexes.begin(), gd.mutexes.end());
    }
  }
  return out;
}

}  // namespace

std::string qualify_mutex(const CgFunction& fn, const std::string& arg) {
  std::string a = trim(arg);
  if (starts_with(a, "this->")) a = a.substr(6);
  if (starts_with(a, "*")) a = trim(a.substr(1));
  const std::string owner =
      fn.cfg.qualifier.empty() ? fn.path : fn.cfg.qualifier;
  return owner + "::" + a;
}

std::vector<std::set<std::string>> must_hold(const CgFunction& fn) {
  const auto guards = collect_guards(fn);
  const HoldAnalysis ha = analyze_hold(fn, guards);
  std::vector<std::set<std::string>> out(fn.cfg.nodes.size());
  for (std::size_t n = 0; n < fn.cfg.nodes.size(); ++n) {
    for (const auto& [mu, info] : ha.in[n]) {
      (void)info;
      out[n].insert(mu);
    }
  }
  return out;
}

SummarySet compute_summaries(const CallGraph& cg) {
  SummarySet out;
  out.summaries.resize(cg.functions.size());

  std::vector<LocalFacts> locals;
  locals.reserve(cg.functions.size());
  for (const CgFunction& fn : cg.functions) locals.push_back(local_facts(fn));

  const auto compute_one = [&](std::size_t f) {
    const CgFunction& fn = cg.functions[f];
    const LocalFacts& L = locals[f];
    FunctionSummary s;
    s.returns_status = L.returns_status;
    s.consults_token = L.consults_token;
    s.can_block = L.can_block;
    s.escapes_callable_to_pool = L.escapes_to_pool;
    s.locks_acquired = L.locks_acquired;
    for (const auto& [mu, info] : L.held_at_exit) {
      (void)info;
      s.locks_held_at_exit.insert(mu);
    }

    // `auto f() { return g(...); }` inherits g's status-ness: the first
    // synchronous resolved call on a return node is the returned value.
    if (!s.returns_status && L.auto_return) {
      for (const CallSite& site : fn.calls) {
        if (site.deferred || site.targets.empty()) continue;
        if (fn.cfg.nodes[site.node].kind != CfgNode::Kind::kReturn) continue;
        bool all = true;
        for (const std::size_t t : site.targets) {
          all = all && out.summaries[t].returns_status;
        }
        if (all) s.returns_status = true;
        break;  // leftmost call on the first return node decides
      }
    }

    // Transitive facts across synchronous edges.
    for (const CallSite& site : fn.calls) {
      if (site.deferred) continue;
      for (const std::size_t t : site.targets) {
        const FunctionSummary& cs = out.summaries[t];
        if (cs.consults_token) s.consults_token = true;
        if (cs.can_block) s.can_block = true;
        if (cs.escapes_callable_to_pool) s.escapes_callable_to_pool = true;
        s.locks_acquired.insert(cs.locks_acquired.begin(),
                                cs.locks_acquired.end());
        s.lock_pairs.insert(cs.lock_pairs.begin(), cs.lock_pairs.end());
      }
    }

    // Locally formed (outer, inner) orders: an acquisition or a locking
    // call executed while something is already must-held.
    for (std::size_t n = 0; n < fn.cfg.nodes.size(); ++n) {
      if (L.held_in[n].empty()) continue;
      std::set<std::string> inner = acquired_at(fn, L, n);
      for (const CallSite& site : fn.calls) {
        if (site.node != n || site.deferred) continue;
        for (const std::size_t t : site.targets) {
          const auto& acq = out.summaries[t].locks_acquired;
          inner.insert(acq.begin(), acq.end());
        }
      }
      for (const auto& [outer, info] : L.held_in[n]) {
        (void)info;
        for (const std::string& in_mu : inner) {
          if (outer != in_mu) s.lock_pairs.insert({outer, in_mu});
        }
      }
    }
    return s;
  };

  for (const auto& scc : cg.sccs) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::size_t f : scc) {
        FunctionSummary s = compute_one(f);
        if (!summary_equal(s, out.summaries[f])) {
          out.summaries[f] = std::move(s);
          changed = true;
        }
      }
    }
  }

  // Witnesses for locally formed pairs, with final summaries.
  std::set<std::tuple<std::string, std::string, std::string, std::string,
                      std::size_t>>
      seen;
  for (std::size_t f = 0; f < cg.functions.size(); ++f) {
    const CgFunction& fn = cg.functions[f];
    const LocalFacts& L = locals[f];
    for (std::size_t n = 0; n < fn.cfg.nodes.size(); ++n) {
      if (L.held_in[n].empty()) continue;
      std::set<std::string> inner = acquired_at(fn, L, n);
      std::size_t line = fn.cfg.nodes[n].line;
      for (const CallSite& site : fn.calls) {
        if (site.node != n || site.deferred) continue;
        for (const std::size_t t : site.targets) {
          const auto& acq = out.summaries[t].locks_acquired;
          inner.insert(acq.begin(), acq.end());
        }
      }
      for (const auto& [outer, info] : L.held_in[n]) {
        (void)info;
        for (const std::string& in_mu : inner) {
          if (outer == in_mu) continue;
          if (seen.insert({outer, in_mu, fn.path, fn.display, line})
                  .second) {
            out.witnesses.push_back({outer, in_mu, fn.path, fn.display,
                                     line});
          }
        }
      }
    }
  }
  std::sort(out.witnesses.begin(), out.witnesses.end(),
            [](const LockPairWitness& a, const LockPairWitness& b) {
              return std::tie(a.outer, a.inner, a.path, a.line) <
                     std::tie(b.outer, b.inner, b.path, b.line);
            });
  return out;
}

}  // namespace xh::lint
