#include "service/job_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ios>
#include <memory>
#include <utility>

#include "engine/partition_engine.hpp"
#include "kernels/kernels.hpp"
#include "response/io.hpp"
#include "service/checkpoint.hpp"
#include "storage/store_factory.hpp"
#include "util/check.hpp"

namespace xh {
namespace {

/// Replays @p from into @p into record by record (Diagnostics has no merge
/// API; replay keeps counts and severities). Records suppressed past the
/// per-kind retention cap in @p from are not recoverable — acceptable for
/// the per-attempt volumes here.
void replay_diags(const Diagnostics& from, Diagnostics& into) {
  for (const Diagnostic& d : from.records()) {
    into.report(d.severity, d.kind, d.location, d.message);
  }
}

/// Accepted rounds represented by a history trajectory: the trailing entry
/// is either an accepted round (its index) or the final rejected probe
/// (one past the last accepted round).
std::size_t accepted_rounds(const std::vector<PartitionRound>& history) {
  if (history.empty()) return 0;
  const PartitionRound& back = history.back();
  return back.accepted ? back.round : back.round - 1;
}

std::string sanitize_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kDegraded: return "degraded";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool job_state_terminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kDegraded ||
         state == JobState::kFailed || state == JobState::kCancelled;
}

PartitionService::PartitionService(ServiceConfig config)
    : config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock : &wall_clock()),
      jitter_rng_(config_.retry.jitter_seed),
      pool_(config_.workers + 1) {
  XH_REQUIRE(config_.workers >= 1,
             "PartitionService requires at least one worker");
  // Operator/CI override: one environment variable sweeps every ingested
  // job onto a specific storage backend without touching call sites.
  if (const char* env = std::getenv("XH_XM_BACKEND")) {
    XmBackend backend = config_.xm_backend;
    if (parse_xm_backend(env, &backend)) {
      config_.xm_backend = backend;
    } else {
      service_diags_.warn(DiagKind::kBadArgument, "XH_XM_BACKEND",
                          std::string("unknown storage backend '") + env +
                              "'; keeping the configured one");
    }
  }
  if (!config_.checkpoint_dir.empty() &&
      config_.checkpoint_every_rounds > 0) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
    if (ec) {
      service_diags_.warn(DiagKind::kStreamFailure, config_.checkpoint_dir,
                          "cannot create checkpoint directory: " +
                              ec.message() + "; checkpointing will fail");
    }
  }
  if (config_.watchdog_period_ns > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

PartitionService::~PartitionService() { shutdown(); }

SubmitOutcome PartitionService::submit(JobSpec spec) {
  XH_REQUIRE(spec.matrix != nullptr || !spec.source_path.empty(),
             "JobSpec needs a matrix or a source_path");
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t depth = queued_.size() + running_;
    if (stopping_ || shut_down_ || depth >= config_.max_queue_depth) {
      ++stats_.jobs_rejected_overload;
      service_diags_.warn(
          DiagKind::kOverloaded,
          spec.name.empty() ? "submit" : spec.name,
          stopping_ || shut_down_
              ? "service is shutting down; job rejected"
              : "queue depth " + std::to_string(depth) +
                    " at admission cap " +
                    std::to_string(config_.max_queue_depth) +
                    "; job rejected (backpressure)");
      return {};
    }
    id = next_id_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = std::move(spec);
    if (job->spec.name.empty()) {
      job->spec.name = "job-" + std::to_string(id);
    }
    if (job->spec.deadline_ns == 0) {
      job->spec.deadline_ns = config_.default_deadline_ns;
    }
    jobs_.emplace(id, std::move(job));
    queued_.push_back(id);
    ++stats_.jobs_accepted;
    stats_.queue_depth = queued_.size() + running_;
    stats_.queue_depth_peak =
        std::max(stats_.queue_depth_peak, stats_.queue_depth);
  }
  // Post AFTER releasing mu_: run_next() re-acquires it, so posting under
  // the lock hands the pool a task that immediately contends with (or, if
  // the pool ever ran callables inline, deadlocks against) this scope.
  // The job is already queued; a concurrent shutdown() between unlock and
  // post just makes run_next() a no-op.
  pool_.post([this] { run_next(); });
  return {true, id};
}

std::vector<SubmitOutcome> PartitionService::ingest_directory(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<SubmitOutcome> outcomes;
  std::vector<fs::path> paths;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".xm") {
      paths.push_back(entry.path());
    }
  }
  if (ec) {
    std::lock_guard<std::mutex> lock(mu_);
    service_diags_.error(DiagKind::kStreamFailure, dir,
                         "cannot list ingestion directory: " + ec.message());
    return outcomes;
  }
  // Directory iteration order is unspecified; sort so job ids — and with
  // one worker, execution order — are deterministic.
  std::sort(paths.begin(), paths.end());
  outcomes.reserve(paths.size());
  for (const fs::path& path : paths) {
    JobSpec spec;
    spec.name = path.stem().string();
    spec.source_path = path.string();
    spec.config = config_.partitioner;
    spec.xm_backend = config_.xm_backend;
    outcomes.push_back(submit(std::move(spec)));
  }
  return outcomes;
}

std::string PartitionService::checkpoint_path_for(const Job& job) const {
  if (config_.checkpoint_dir.empty() ||
      config_.checkpoint_every_rounds == 0) {
    return std::string();
  }
  return config_.checkpoint_dir + "/" + sanitize_name(job.spec.name) +
         ".ckpt";
}

JobState PartitionService::run_attempt(Job& job, CancelToken& token) {
  std::function<void(JobId, std::size_t)> hook;
  std::size_t attempt = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = fault_hook_;
    attempt = job.attempts;
  }
  if (hook) hook(job.id, attempt);

  Diagnostics local;
  std::shared_ptr<const XMatrix> xm = job.spec.matrix;
  if (xm == nullptr) {
    std::ifstream in(job.spec.source_path, std::ios::binary);
    if (!in) {
      // The file may still be landing in the ingestion directory (or the
      // filesystem hiccuped): transient, worth a retry.
      std::lock_guard<std::mutex> lock(mu_);
      job.diags.warn(DiagKind::kStreamFailure, job.spec.source_path,
                     "cannot open input");
      throw TransientError("cannot open " + job.spec.source_path);
    }
    try {
      xm = std::make_shared<XMatrix>(read_x_matrix(in, &local));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      replay_diags(local, job.diags);
      throw;  // classified by the caller via the recorded kinds
    }
  }

  // Freezing the matrix can itself do I/O (the mmap backend builds its
  // backing file): a std::ios_base::failure here rides the transient-retry
  // path like any other filesystem hiccup.
  const std::unique_ptr<XMatrixStore> store_ptr =
      make_store(*xm, job.spec.xm_backend, config_.store_options);
  const XMatrixStore& store = *store_ptr;
  const std::string ckpt_path = checkpoint_path_for(job);
  std::optional<PartitionEngine> engine;
  bool resumed = false;
  if (!ckpt_path.empty()) {
    if (const auto ckpt = load_checkpoint(ckpt_path, &local)) {
      std::string why;
      if (checkpoint_matches(*ckpt, store.geometry(), store.num_patterns(),
                             store.total_x(), job.spec.config,
                             store.backend_name(), kernels::active().name,
                             &why)) {
        try {
          engine.emplace(store, job.spec.config, ckpt->snapshot, nullptr,
                         nullptr, &token);
          resumed = true;
        } catch (const std::exception& e) {
          local.error(DiagKind::kCheckpointCorrupt, ckpt_path,
                      std::string("restore rejected (") + e.what() +
                          "); restarting from scratch");
        }
      } else {
        local.warn(DiagKind::kCheckpointCorrupt, ckpt_path,
                   "identity mismatch (" + why +
                       "); ignoring checkpoint and restarting");
      }
    }
  }
  if (!engine.has_value()) {
    engine.emplace(store, job.spec.config, nullptr, nullptr, &token);
  }
  if (resumed) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.checkpoints_resumed;
    job.resumed_from_checkpoint = true;
  }

  const auto write_checkpoint = [&] {
    ServiceCheckpoint ckpt;
    ckpt.geometry = store.geometry();
    ckpt.num_patterns = store.num_patterns();
    ckpt.total_x = store.total_x();
    ckpt.config = job.spec.config;
    ckpt.backend = store.backend_name();
    ckpt.isa = kernels::active().name;
    ckpt.snapshot = engine->snapshot();
    const bool saved = save_checkpoint(ckpt, ckpt_path, &local);
    std::lock_guard<std::mutex> lock(mu_);
    if (saved) ++stats_.checkpoints_written;
  };

  bool degraded = false;
  std::size_t rounds_since_checkpoint = 0;
  // The consultation is one call deep: the engine was constructed with
  // &token above and step() checks stop_requested() at the top of every
  // round, surfacing it as kCancelled which this loop turns into a
  // degraded exit. xh-lint: allow(XH-FLOW-002)
  for (;;) {
    const PartitionEngine::StepOutcome outcome = engine->step();
    if (outcome == PartitionEngine::StepOutcome::kSplit) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        job.last_progress_ns = clock_->now_ns();
      }
      if (!ckpt_path.empty() &&
          ++rounds_since_checkpoint >= config_.checkpoint_every_rounds) {
        write_checkpoint();
        rounds_since_checkpoint = 0;
      }
      continue;
    }
    if (outcome == PartitionEngine::StepOutcome::kCancelled) {
      degraded = true;
      // Persist the stop point: a later attempt (or service restart with
      // a longer budget) resumes instead of recomputing the prefix.
      if (!ckpt_path.empty()) write_checkpoint();
    }
    break;
  }

  PartitionResult result = engine->materialize();
  {
    std::lock_guard<std::mutex> lock(mu_);
    job.rounds = accepted_rounds(result.history);
    job.partition = std::move(result);
    replay_diags(local, job.diags);
    if (degraded) {
      job.diags.warn(DiagKind::kDeadlineExceeded, job.spec.name,
                     "deadline reached after " + std::to_string(job.rounds) +
                         " accepted rounds; best-so-far partition returned");
    }
  }
  return degraded ? JobState::kDegraded : JobState::kCompleted;
}

void PartitionService::finish(std::unique_lock<std::mutex>& lock, Job& job,
                              JobState state) {
  XH_ASSERT(lock.owns_lock(), "finish() requires the service lock");
  job.state = state;
  --running_;
  stats_.queue_depth = queued_.size() + running_;
  switch (state) {
    case JobState::kCompleted: ++stats_.jobs_completed; break;
    case JobState::kDegraded: ++stats_.jobs_degraded; break;
    case JobState::kFailed: ++stats_.jobs_failed; break;
    default: break;
  }
  if (state == JobState::kCompleted) {
    const std::string ckpt_path = checkpoint_path_for(job);
    if (!ckpt_path.empty()) std::remove(ckpt_path.c_str());
  }
  done_gate_.notify_all();
}

void PartitionService::run_next() {
  std::unique_lock<std::mutex> lock(mu_);
  work_gate_.wait(lock, [&] { return !paused_ || stopping_; });
  if (queued_.empty()) return;  // entries removed by cancel_all()
  const JobId id = queued_.front();
  queued_.pop_front();
  Job& job = *jobs_.at(id);
  XH_ASSERT(job.state == JobState::kQueued, "queued job in non-queued state");
  job.state = JobState::kRunning;
  ++running_;
  stats_.queue_depth = queued_.size() + running_;
  const std::uint64_t start_ns = clock_->now_ns();
  job.last_progress_ns = start_ns;
  job.token = job.spec.deadline_ns > 0
                  ? std::make_unique<CancelToken>(
                        *clock_, start_ns + job.spec.deadline_ns)
                  : std::make_unique<CancelToken>();
  CancelToken& token = *job.token;

  JobState final_state = JobState::kFailed;
  std::string error;
  for (;;) {
    ++job.attempts;
    const std::size_t attempt = job.attempts;
    const std::size_t stream_failures_before =
        job.diags.count(DiagKind::kStreamFailure);
    lock.unlock();

    bool transient = false;
    bool succeeded = false;
    try {
      final_state = run_attempt(job, token);
      succeeded = true;
    } catch (const TransientError& e) {
      transient = true;
      error = e.what();
    } catch (const std::ios_base::failure& e) {
      transient = true;
      error = e.what();
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }

    lock.lock();
    if (succeeded) {
      error.clear();
      break;
    }
    // A reader failure surfaces as std::invalid_argument either way; the
    // machine-readable kind it recorded tells I/O transients apart from
    // parse/validation errors (which retrying cannot fix).
    if (!transient && job.diags.count(DiagKind::kStreamFailure) >
                          stream_failures_before) {
      transient = true;
    }
    if (!transient || attempt >= config_.retry.max_attempts ||
        token.stop_requested()) {
      final_state = JobState::kFailed;
      break;
    }
    ++stats_.job_retries;
    const RetryPolicy& retry = config_.retry;
    const std::size_t exponent = std::min<std::size_t>(attempt - 1, 62);
    std::uint64_t backoff = retry.max_backoff_ns;
    if (retry.base_backoff_ns <= (retry.max_backoff_ns >> exponent)) {
      backoff = retry.base_backoff_ns << exponent;
    }
    // Full jitter over the upper half: desynchronizes retry storms while
    // keeping the exponential envelope.
    const std::uint64_t sleep_ns =
        backoff / 2 + jitter_rng_.below(backoff / 2 + 1);
    lock.unlock();
    clock_->sleep_ns(sleep_ns);
    lock.lock();
  }
  job.error = error;
  finish(lock, job, final_state);
}

JobResult PartitionService::snapshot_job(const Job& job) const {
  JobResult out;
  out.id = job.id;
  out.name = job.spec.name;
  out.state = job.state;
  out.attempts = job.attempts;
  out.rounds = job.rounds;
  out.resumed_from_checkpoint = job.resumed_from_checkpoint;
  out.error = job.error;
  out.diagnostics = job.diags;
  if (job_state_terminal(job.state)) out.partition = job.partition;
  return out;
}

std::optional<JobResult> PartitionService::poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot_job(*it->second);
}

JobResult PartitionService::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  XH_REQUIRE(it != jobs_.end(), "wait() on unknown job id");
  Job& job = *it->second;
  done_gate_.wait(lock, [&] { return job_state_terminal(job.state); });
  return snapshot_job(job);
}

void PartitionService::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  done_gate_.wait(lock, [&] { return queued_.empty() && running_ == 0; });
}

void PartitionService::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void PartitionService::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_gate_.notify_all();
}

void PartitionService::cancel_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const JobId id : queued_) {
    Job& job = *jobs_.at(id);
    if (job.state == JobState::kQueued) {
      job.state = JobState::kCancelled;
      ++stats_.jobs_cancelled;
    }
  }
  queued_.clear();
  for (auto& [id, job] : jobs_) {
    if (job->state == JobState::kRunning && job->token != nullptr) {
      job->token->request_cancel();
    }
  }
  stats_.queue_depth = running_;
  done_gate_.notify_all();
}

void PartitionService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    stopping_ = true;
    paused_ = false;  // a paused service must still drain
  }
  work_gate_.notify_all();
  wait_all();
  try {
    pool_.drain();
  } catch (const std::exception& e) {
    // run_next() catches everything, so a task exception here means a bug
    // in the service itself — record it rather than losing it.
    std::lock_guard<std::mutex> lock(mu_);
    service_diags_.error(DiagKind::kBadArgument, "service pool",
                         std::string("unexpected task failure: ") + e.what());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    shut_down_ = true;
  }
  watchdog_gate_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void PartitionService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto period = std::chrono::nanoseconds(config_.watchdog_period_ns);
  const std::uint64_t stall_after =
      config_.stall_after_ns > 0 ? config_.stall_after_ns
                                 : 10 * config_.watchdog_period_ns;
  while (!shut_down_) {
    watchdog_gate_.wait_for(lock, period, [&] { return shut_down_; });
    if (shut_down_) break;
    ++stats_.heartbeats;
    stats_.queue_depth = queued_.size() + running_;
    stats_.queue_depth_peak =
        std::max(stats_.queue_depth_peak, stats_.queue_depth);
    const std::uint64_t now_ns = clock_->now_ns();
    for (const auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning && !job->stall_reported &&
          now_ns - job->last_progress_ns > stall_after) {
        job->stall_reported = true;
        ++stats_.watchdog_stalls;
      }
    }
  }
}

ServiceStats PartitionService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PartitionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_.size() + running_;
}

Diagnostics PartitionService::diagnostics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return service_diags_;
}

void PartitionService::export_telemetry(Trace* trace) const {
  if (trace == nullptr) return;
  const ServiceStats s = stats();
  obs_count(trace, "service.jobs_accepted", s.jobs_accepted);
  obs_count(trace, "service.jobs_rejected_overload",
            s.jobs_rejected_overload);
  obs_count(trace, "service.jobs_completed", s.jobs_completed);
  obs_count(trace, "service.jobs_degraded", s.jobs_degraded);
  obs_count(trace, "service.jobs_failed", s.jobs_failed);
  obs_count(trace, "service.jobs_cancelled", s.jobs_cancelled);
  obs_count(trace, "service.job_retries", s.job_retries);
  obs_count(trace, "service.checkpoints_written", s.checkpoints_written);
  obs_count(trace, "service.checkpoints_resumed", s.checkpoints_resumed);
  obs_count(trace, "service.heartbeats", s.heartbeats);
  obs_count(trace, "service.watchdog_stalls", s.watchdog_stalls);
  obs_gauge(trace, "service.queue_depth",
            static_cast<double>(s.queue_depth));
  obs_gauge(trace, "service.queue_depth_peak",
            static_cast<double>(s.queue_depth_peak));
  if (s.jobs_degraded > 0) {
    // Same degradation gauge run_partitioning() emits on the CLI path.
    obs_gauge(trace, "hybrid.degraded", static_cast<double>(s.jobs_degraded));
  }
}

void PartitionService::set_fault_hook(
    std::function<void(JobId, std::size_t)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(hook);
}

}  // namespace xh
