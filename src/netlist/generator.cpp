#include "netlist/generator.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

const GateType kRandomTypes[] = {
    GateType::kAnd,  GateType::kNand, GateType::kOr,  GateType::kNor,
    GateType::kXor,  GateType::kXnor, GateType::kNot, GateType::kBuf,
    GateType::kMux,
};

}  // namespace

Netlist generate_circuit(const GeneratorConfig& cfg) {
  XH_REQUIRE(cfg.num_inputs >= 2, "need at least two primary inputs");
  XH_REQUIRE(cfg.num_outputs >= 1, "need at least one primary output");
  XH_REQUIRE(cfg.num_gates >= 1, "need at least one gate");
  XH_REQUIRE(cfg.nonscan_fraction >= 0.0 && cfg.nonscan_fraction <= 1.0,
             "nonscan_fraction must be in [0,1]");
  XH_REQUIRE(cfg.num_buses == 0 || cfg.drivers_per_bus >= 1,
             "buses need at least one driver");

  Rng rng(cfg.seed);
  Netlist nl("gen_seed" + std::to_string(cfg.seed));

  std::vector<GateId> signals;  // everything usable as a fanin
  for (std::size_t i = 0; i < cfg.num_inputs; ++i) {
    signals.push_back(nl.add_input("pi" + std::to_string(i)));
  }

  // DFF placeholders up front: their outputs feed logic, their D inputs are
  // wired to late gates afterwards, giving genuine sequential feedback.
  std::vector<GateId> dffs;
  const std::size_t nonscan_target = static_cast<std::size_t>(
      static_cast<double>(cfg.num_dffs) * cfg.nonscan_fraction + 0.5);
  for (std::size_t i = 0; i < cfg.num_dffs; ++i) {
    const bool scanned = i >= nonscan_target;
    std::string ff_name = scanned ? "ff" : "xff";
    ff_name += std::to_string(i);
    const GateId id = nl.add_dff_placeholder(std::move(ff_name), scanned);
    dffs.push_back(id);
    signals.push_back(id);
  }

  auto pick_signal = [&]() -> GateId {
    if (signals.size() > cfg.locality_window && rng.chance(cfg.locality)) {
      const std::size_t lo = signals.size() - cfg.locality_window;
      return signals[lo + static_cast<std::size_t>(
                              rng.below(cfg.locality_window))];
    }
    return signals[static_cast<std::size_t>(rng.below(signals.size()))];
  };

  auto pick_distinct_pair = [&](GateId& a, GateId& b) {
    a = pick_signal();
    b = pick_signal();
    for (int tries = 0; b == a && tries < 8; ++tries) b = pick_signal();
  };

  std::size_t gate_seq = 0;
  auto fresh_name = [&] { return "g" + std::to_string(gate_seq++); };

  for (std::size_t i = 0; i < cfg.num_gates; ++i) {
    const GateType type =
        kRandomTypes[rng.below(std::size(kRandomTypes))];
    std::vector<GateId> fanin;
    switch (min_fanin(type)) {
      case 1:
        fanin = {pick_signal()};
        break;
      case 2: {
        GateId a = kNoGate;
        GateId b = kNoGate;
        pick_distinct_pair(a, b);
        fanin = {a, b};
        // Occasionally widen variadic gates to 3 inputs.
        if (variadic_fanin(type) && rng.chance(0.25)) {
          fanin.push_back(pick_signal());
        }
        break;
      }
      case 3:
        fanin = {pick_signal(), pick_signal(), pick_signal()};
        break;
      default:
        XH_ASSERT(false, "unexpected arity in generator");
    }
    signals.push_back(nl.add_gate(type, std::move(fanin), fresh_name()));
  }

  // Tri-state buses: enable/data drawn from the logic, resolver becomes a
  // new signal (and a realistic X-source under contention).
  for (std::size_t b = 0; b < cfg.num_buses; ++b) {
    std::vector<GateId> drivers;
    for (std::size_t d = 0; d < cfg.drivers_per_bus; ++d) {
      GateId en = kNoGate;
      GateId data = kNoGate;
      pick_distinct_pair(en, data);
      drivers.push_back(nl.add_gate(
          GateType::kTristate, {en, data},
          "tsd" + std::to_string(b) + "_" + std::to_string(d)));
    }
    signals.push_back(
        nl.add_gate(GateType::kBus, std::move(drivers),
                    "bus" + std::to_string(b)));
  }

  // Connect DFF D inputs, preferring late (deep) signals.
  for (const GateId dff : dffs) {
    const std::size_t half = signals.size() / 2;
    const GateId d = signals[half + static_cast<std::size_t>(
                                        rng.below(signals.size() - half))];
    nl.connect_dff(dff, d);
  }

  // Primary outputs from late signals; keep them distinct when possible.
  std::vector<GateId> candidates(signals.end() - static_cast<std::ptrdiff_t>(
                                     std::min(signals.size(),
                                              cfg.num_outputs * 4)),
                                 signals.end());
  rng.shuffle(candidates);
  for (const GateId id : candidates) {
    if (nl.outputs().size() == cfg.num_outputs) break;
    if (nl.gate(id).type == GateType::kInput) continue;
    nl.mark_output(id);
  }
  // Deterministic backstop if the shuffled window was too input-heavy.
  for (GateId id = static_cast<GateId>(nl.gate_count());
       id-- > 0 && nl.outputs().size() < cfg.num_outputs;) {
    if (nl.gate(id).type != GateType::kInput) nl.mark_output(id);
  }

  nl.finalize();
  return nl;
}

}  // namespace xh
