// Abstract storage interface for the frozen X matrix (DESIGN.md §12).
//
// The partition engine probes the X matrix with three fused operations —
// count_in (popcount of row ∩ pattern-set), hash_in (the FNV-1a group key),
// intersect_into (materialize row ∩ pattern-set) — plus cheap row metadata
// (cell id, total X count). XMatrixStore abstracts those probes away from
// the physical representation so the engine can run against:
//
//   * CsrStore  — the original in-RAM CSR snapshot (default; bit-identical
//                 to the pre-refactor XMatrixView),
//   * TebmStore — a tree-encoded bitmap that compresses sparse rows per
//                 256-pattern chunk (the partition-of-tree-masks idiom),
//   * MmapStore — a memory-mapped CSR file for out-of-core workloads.
//
// Every backend must be a *value*: immutable after construction, safe for
// concurrent readers (the engine's thread-pool fan-out) with no external
// synchronization. Probe accounting uses relaxed atomics internally, so
// stats() is likewise safe to call at any time; the probe totals are a pure
// function of the engine's work, not of the thread count.
//
// Contract every backend must honor bit for bit (the cross-backend
// equivalence suite enforces it):
//   * rows are the X-capturing cells in ascending cell-id order;
//   * count_in/hash_in/intersect_into agree with the CSR formulation over
//     the same 64-bit word sequence — hash_in in particular must fold EVERY
//     word (including all-zero ones) through the FNV-1a step, because the
//     seed partitioner's set_hash does;
//   * intersect_into resizes the output to num_patterns().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "response/geometry.hpp"
#include "util/bitvec.hpp"

namespace xh {

class Trace;

/// Point-in-time snapshot of one store's probe/footprint accounting.
/// Probe counters are deterministic for a deterministic engine run;
/// pages_touched is nonzero only for page-granular backends (MmapStore).
struct StoreStats {
  std::uint64_t probe_count_in = 0;
  std::uint64_t probe_hash_in = 0;
  std::uint64_t probe_intersect = 0;
  std::uint64_t rows_touched = 0;   // sum of the three probe counters
  std::uint64_t pages_touched = 0;  // page-fault proxy: pages spanned by
                                    // row payload reads (mmap backend)
  std::uint64_t resident_bytes = 0;  // heap owned by the store
  std::uint64_t mapped_bytes = 0;    // file bytes mapped, 0 for RAM stores
};

class XMatrixStore {
 public:
  XMatrixStore() = default;
  virtual ~XMatrixStore() = default;

  // A store is pinned by reference in the engine; copying would silently
  // fork the probe accounting.
  XMatrixStore(const XMatrixStore&) = delete;
  XMatrixStore& operator=(const XMatrixStore&) = delete;

  /// Stable identity token ("csr", "tebm", "mmap") recorded in xh-ckpt/1
  /// checkpoints so a resume refuses a mismatched backend.
  virtual const char* backend_name() const = 0;

  virtual const ScanGeometry& geometry() const = 0;
  virtual std::size_t num_patterns() const = 0;
  std::size_t num_cells() const { return geometry().num_cells(); }
  virtual std::uint64_t total_x() const = 0;

  /// Rows = X-capturing cells, ascending by cell id.
  virtual std::size_t num_rows() const = 0;
  virtual std::size_t cell_id(std::size_t row) const = 0;
  /// X count of the row across all patterns (precomputed).
  virtual std::size_t x_count(std::size_t row) const = 0;

  /// popcount(row & patterns): the row's X count inside a pattern subset.
  virtual std::size_t count_in(std::size_t row,
                               const BitVec& patterns) const = 0;

  /// FNV-1a hash of (row & patterns) over all pattern words — the group key
  /// the partition analysis buckets cells by (identical to the seed
  /// partitioner's set_hash, so groups match bit for bit).
  virtual std::uint64_t hash_in(std::size_t row,
                                const BitVec& patterns) const = 0;

  /// Materializes (row & patterns) into @p out (resized to num_patterns).
  virtual void intersect_into(std::size_t row, const BitVec& patterns,
                              BitVec* out) const = 0;

  /// popcount(row & ~patterns), fused from the precomputed row count.
  std::size_t and_not_count(std::size_t row, const BitVec& patterns) const {
    return x_count(row) - count_in(row, patterns);
  }

  [[nodiscard]] StoreStats stats() const;

 protected:
  /// Derived classes report their memory footprint; everything else in
  /// StoreStats is accumulated here via the note_*() helpers.
  virtual std::uint64_t resident_bytes() const = 0;
  virtual std::uint64_t mapped_bytes() const { return 0; }

  void note_count_in() const {
    probe_count_in_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_hash_in() const {
    probe_hash_in_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_intersect() const {
    probe_intersect_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_pages(std::uint64_t pages) const {
    pages_touched_.fetch_add(pages, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::uint64_t> probe_count_in_{0};
  mutable std::atomic<std::uint64_t> probe_hash_in_{0};
  mutable std::atomic<std::uint64_t> probe_intersect_{0};
  mutable std::atomic<std::uint64_t> pages_touched_{0};
};

/// Publishes @p store's accounting into @p trace as store.* counters and
/// gauges. Call once per Trace from the owning thread (counters add deltas,
/// exactly like PartitionService::export_telemetry).
void export_store_telemetry(const XMatrixStore& store, Trace* trace);

}  // namespace xh
