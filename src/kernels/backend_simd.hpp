// Declarations of the SIMD kernel backends (definitions in backend_avx2.cpp
// and backend_avx512.cpp, compiled with per-function target attributes so no
// global -m flags are needed and the binary stays runnable on plain x86-64).
//
// Private to the kernels layer: everything else reaches these through the
// dispatched table in kernels.hpp (tools/lint/layers.txt marks
// src/kernels/backend_* accordingly). Calling one of these on a CPU that
// lacks the corresponding ISA is undefined behaviour (SIGILL) — the
// dispatcher guards every entry with __builtin_cpu_supports.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xh::kernels {

#if defined(__x86_64__) || defined(_M_X64)
#define XH_KERNELS_HAVE_X86 1
#else
#define XH_KERNELS_HAVE_X86 0
#endif

#if XH_KERNELS_HAVE_X86

namespace avx2 {
std::size_t popcount_words(const std::uint64_t* w, std::size_t n);
std::size_t and_count_words(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n);
std::size_t and_not_count_words(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n);
void xor_words(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
void and_words_into(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n);
}  // namespace avx2

namespace avx512 {
std::size_t popcount_words(const std::uint64_t* w, std::size_t n);
std::size_t and_count_words(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n);
std::size_t and_not_count_words(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n);
void xor_words(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
void and_words_into(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n);
}  // namespace avx512

#endif  // XH_KERNELS_HAVE_X86

}  // namespace xh::kernels
