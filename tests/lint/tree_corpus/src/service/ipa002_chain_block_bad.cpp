// Seeds XH-IPA-002 transitively: the lambda body itself never blocks, but
// the deferred callee it resolves to (spin_backoff) does. Only the
// summary's can_block bit, propagated through the call graph, sees that.
#include "service/ipa_seam.hpp"

namespace fixture {

void spin_backoff() {
  sleep_ns(1000);
}

void pump_chained(WorkPool& pool, const CancelToken& token) {
  if (token.stop_requested()) return;
  pool.post([] { spin_backoff(); });
}

}  // namespace fixture
