// The paper's worked example (Figures 4–6, Section 4).
//
// 8 test patterns, 5 scan chains × 3 cells. The full X matrix is not printed
// in the paper; this reconstruction is the unique-up-to-symmetry assignment
// consistent with every number in the text:
//   * X counts per cell: three cells with 4 X's (first cells of SC1/SC2/SC3),
//     one with 1 (SC5 cell 3), one with 2 (SC2 cell 3), one with 6
//     (SC5 cell 2), one with 7 (SC4 cell 3); 28 X's total.
//   * Round 1 splits on a 4-X cell → partitions {P1,P4,P5,P6} / {P2,P3,P7,P8},
//     masking 16 X's and leaking 12.
//   * Round 2 splits Partition 1 on SC4 cell 3 → {P1,P4,P5} / {P6},
//     masking 23 X's and leaking 5; masking control bits drop 120 → 45.
//   * No partition has ≥2 candidate cells sharing an X count afterwards, so
//     partitioning stops exactly as the paper describes.
//   * Cost sequence (m=10,q=2): 85 → 60 → 57.5 (continue);
//     (m=10,q=1): 46.1 → 43.3, next probe 50.5 (stop after round 1).
#pragma once

#include <cstdint>

#include "response/geometry.hpp"
#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"

namespace xh {

/// 5 chains × 3 cells (cell index = chain·3 + position).
[[nodiscard]] ScanGeometry paper_example_geometry();

/// Convenient aliases for the cells named in the text.
struct PaperExampleCells {
  static constexpr std::size_t sc1_c0 = 0;   // first cell of SC1 (4 X's)
  static constexpr std::size_t sc2_c0 = 3;   // first cell of SC2 (4 X's)
  static constexpr std::size_t sc2_c2 = 5;   // third cell of SC2 (2 X's)
  static constexpr std::size_t sc3_c0 = 6;   // first cell of SC3 (4 X's)
  static constexpr std::size_t sc4_c2 = 11;  // third cell of SC4 (7 X's)
  static constexpr std::size_t sc5_c1 = 13;  // second cell of SC5 (6 X's)
  static constexpr std::size_t sc5_c2 = 14;  // third cell of SC5 (1 X)
};

/// The 8-pattern × 15-cell X-location matrix of Figure 4.
[[nodiscard]] XMatrix paper_example_x_matrix();

/// A dense response carrying the Figure 4 X's; deterministic cells get
/// pseudo-random 0/1 values from @p seed (their values are irrelevant to the
/// partitioning but exercise the full pipeline).
[[nodiscard]] ResponseMatrix paper_example_response(std::uint64_t seed = 1);

}  // namespace xh
