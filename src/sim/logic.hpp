// Four-valued logic (0, 1, X, Z) and its gate semantics.
//
// X is "unknown": the classic pessimistic three-valued algebra, extended with
// Z ("not driven") which only tri-state structures produce. Any ordinary gate
// consuming Z treats it as X (an undriven net reads an unknown voltage).
#pragma once

#include <cstdint>

namespace xh {

/// Logic value. The numeric codes match the packed 2-bit plane encoding used
/// by the parallel simulator: bit0 = p0, bit1 = p1 with 00=0, 01=1, 10=X, 11=Z.
enum class Lv : std::uint8_t {
  k0 = 0,
  k1 = 1,
  kX = 2,
  kZ = 3,
};

constexpr bool is_definite(Lv v) { return v == Lv::k0 || v == Lv::k1; }

/// Z degrades to X at the input of any ordinary gate.
constexpr Lv absorb_z(Lv v) { return v == Lv::kZ ? Lv::kX : v; }

char to_char(Lv v);
Lv lv_from_char(char c);  // '0' '1' 'x'/'X' 'z'/'Z'

Lv lv_not(Lv a);
Lv lv_and(Lv a, Lv b);
Lv lv_or(Lv a, Lv b);
Lv lv_xor(Lv a, Lv b);

/// MUX(select, in0, in1): select==X yields the common definite value of the
/// data inputs if they agree, else X.
Lv lv_mux(Lv select, Lv in0, Lv in1);

/// TRISTATE(enable, data): Z when disabled, data (Z→X) when enabled, X when
/// the enable is unknown (could be driving or not).
Lv lv_tristate(Lv enable, Lv data);

}  // namespace xh
