// X-canceling MISR session (Yang & Touba [12,13], time-multiplexed variant).
//
// Captured slices stream into the MISR. X values are tracked symbolically;
// whenever the number of distinct X's accumulated since the last stop reaches
// m − q, scan shifting halts, Gaussian elimination finds q X-free
// combinations of the m signature bits, their values are read out, and the
// MISR restarts. Each stop costs m·q control bits from the tester (the q
// selection vectors) and one halt of the scan clock (test-time overhead).
//
// Robustness (DESIGN.md §7): a burst of X's arriving in one shift cycle can
// overshoot the m−q budget, leaving fewer than q X-free combinations at the
// stop (*extraction starvation*); and a corrupted selection vector can fail
// the X-freeness re-check (*contamination*). With a Diagnostics collector
// attached the session degrades gracefully — contaminated combinations are
// dropped (never emitted), starved stops are reported, the stop threshold is
// lowered by the outstanding deficit so the next stop's null space has room
// for the owed bits, and the threshold self-restores to m − q once the
// deficit is repaid. Without a collector, contamination keeps its legacy
// fail-fast std::logic_error.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "gf2/lfsr.hpp"
#include "obs/trace.hpp"
#include "response/response_matrix.hpp"
#include "sim/logic.hpp"
#include "util/bitvec.hpp"
#include "util/check.hpp"
#include "util/diagnostics.hpp"

namespace xh {

class Gf2Matrix;

/// MISR configuration shared by simulation and accounting.
struct MisrConfig {
  std::size_t size = 32;  // m
  std::size_t q = 7;      // X-free combinations extracted per stop

  void validate() const {
    XH_REQUIRE(size >= 2 && size <= 64, "MISR size must be in [2,64]");
    XH_REQUIRE(q >= 1 && q < size, "q must satisfy 1 <= q < m");
  }
};

/// One extracted X-free signature bit.
struct SignatureBit {
  std::size_t stop_index = 0;
  BitVec combination;  // selection over the m MISR bits
  bool value = false;  // the X-canceled observation
};

/// Session outcome.
struct XCancelResult {
  std::size_t stops = 0;
  std::size_t shift_cycles = 0;
  std::size_t total_x_seen = 0;
  /// Shift-cycle index after which each stop occurred (size() == stops);
  /// lets callers replay segmentation and model halt timing.
  std::vector<std::size_t> stop_cycles;
  std::vector<SignatureBit> signature;

  /// Selection vectors actually streamed from the tester (q per healthy
  /// stop; fewer at starved stops, more at recovery stops).
  std::size_t selection_vectors = 0;
  /// Stops that yielded fewer than q verified X-free combinations.
  std::size_t starved_stops = 0;
  /// Combinations dropped because they failed the X-freeness re-check.
  std::size_t contaminated_dropped = 0;
  /// Combinations extracted beyond q at later stops to repay a deficit.
  std::size_t extra_combinations = 0;
  /// Signature bits still missing versus the q-per-stop plan at finish().
  std::size_t signature_deficit = 0;

  /// No recovery path engaged: every stop delivered its full q bits and no
  /// combination had to be dropped.
  bool healthy() const {
    return starved_stops == 0 && contaminated_dropped == 0 &&
           signature_deficit == 0;
  }

  /// Tester data for the selective-XOR network: m bits per streamed
  /// selection vector (equals stops·m·q when no recovery path engaged).
  std::size_t control_bits(const MisrConfig& cfg) const {
    return selection_vectors * cfg.size;
  }
};

/// Streaming X-canceling MISR simulator.
///
/// Feed captured slices (one Lv per MISR input stage) with shift(); call
/// finish() once at the end to flush the final partial segment. The extracted
/// signature bits are provably X-free: each combination's dependency on every
/// X symbol cancels, which the session verifies before emitting the bit.
class XCancelSession {
 public:
  /// The optional trace receives xcancel.* counters (eliminations, rows
  /// examined, combinations emitted/dropped, starvation repayments);
  /// nullptr means no instrumentation.
  explicit XCancelSession(MisrConfig cfg, Diagnostics* diags = nullptr,
                          Trace* trace = nullptr);

  const MisrConfig& config() const { return cfg_; }

  /// One scan shift cycle. @p slice must have cfg.size entries; Z is not a
  /// capturable value.
  void shift(const std::vector<Lv>& slice);

  /// Flushes the trailing segment (extracts final combinations) and returns
  /// the result. The session can keep shifting afterwards only after reset().
  const XCancelResult& finish();

  void reset();

  /// Fault-injection hook (src/inject): invoked at every extraction with the
  /// candidate selection vectors and the segment's X-dependency rows, before
  /// verification. Tampered combinations exercise the contamination-drop
  /// recovery path deterministically. With a hook installed, contamination is
  /// always dropped-and-reported, never thrown.
  using CombinationTamper =
      std::function<void(std::vector<BitVec>& combinations,
                         const Gf2Matrix& xdeps)>;
  void install_combination_tamper(CombinationTamper hook);

 private:
  void extract(bool final_flush);
  /// Nominal m − q, lowered by the outstanding deficit so the next stop's
  /// null space has room for the owed bits; self-restores on repayment.
  std::size_t stop_threshold() const;

  MisrConfig cfg_;
  std::vector<std::size_t> taps_;  // feedback taps, cached for the hot loop
  Lfsr concrete_;                  // X treated as 0 — sound for X-free combos
  std::vector<BitVec> xdep_;      // per MISR bit, over segment X symbols
  std::size_t segment_x_ = 0;     // symbols allocated in current segment
  std::size_t deficit_ = 0;       // signature bits owed from starved stops
  XCancelResult result_;
  bool finished_ = false;
  Diagnostics* diags_ = nullptr;
  Trace* trace_ = nullptr;
  CombinationTamper tamper_;
};

/// Convenience driver: shifts an entire response matrix through an
/// X-canceling MISR. Chains map to MISR stages round-robin
/// (stage = chain mod m, a spatial XOR compactor when chains > m); cells
/// shift out position 0 first.
[[nodiscard]] XCancelResult run_x_canceling(const ResponseMatrix& response,
                                            MisrConfig cfg,
                                            Diagnostics* diags = nullptr,
                                            Trace* trace = nullptr);

}  // namespace xh
