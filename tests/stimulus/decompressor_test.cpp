#include "stimulus/decompressor.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace xh {
namespace {

StimulusDecompressor make(std::size_t seed_bits, ScanGeometry geo,
                          std::uint64_t phase_seed = 1) {
  return StimulusDecompressor(FeedbackPolynomial::primitive(seed_bits), geo,
                              phase_seed);
}

TEST(Decompressor, ExpandIsLinearInSeed) {
  const StimulusDecompressor d = make(16, {4, 10});
  Rng rng(3);
  for (int iter = 0; iter < 10; ++iter) {
    BitVec a(16);
    BitVec b(16);
    for (std::size_t i = 0; i < 16; ++i) {
      if (rng.chance(0.5)) a.set(i);
      if (rng.chance(0.5)) b.set(i);
    }
    EXPECT_TRUE((d.expand(a) ^ d.expand(b)) == d.expand(a ^ b));
  }
}

TEST(Decompressor, ZeroSeedLoadsZero) {
  const StimulusDecompressor d = make(16, {4, 10});
  EXPECT_TRUE(d.expand(BitVec(16)).none());
}

TEST(Decompressor, ExpansionMatchesCellDependencies) {
  const StimulusDecompressor d = make(12, {3, 7});
  Rng rng(9);
  BitVec seed(12);
  for (std::size_t i = 0; i < 12; ++i) {
    if (rng.chance(0.5)) seed.set(i);
  }
  const BitVec load = d.expand(seed);
  for (std::size_t cell = 0; cell < 21; ++cell) {
    EXPECT_EQ(load.get(cell),
              (d.cell_dependency(cell) & seed).count() % 2 != 0);
  }
}

TEST(Decompressor, SolveSeedSatisfiesCareBits) {
  const StimulusDecompressor d = make(24, {4, 16});
  Rng rng(17);
  for (int iter = 0; iter < 20; ++iter) {
    // Up to seed_bits - 4 random care bits with CONSISTENT values (sampled
    // from a real expansion, so a solution must exist).
    BitVec truth_seed(24);
    for (std::size_t i = 0; i < 24; ++i) {
      if (rng.chance(0.5)) truth_seed.set(i);
    }
    const BitVec truth = d.expand(truth_seed);
    BitVec mask(64);
    BitVec values(64);
    for (int k = 0; k < 20; ++k) {
      const std::size_t cell = rng.below(64);
      mask.set(cell);
      values.set(cell, truth.get(cell));
    }
    const auto seed = d.solve_seed(mask, values);
    ASSERT_TRUE(seed.has_value());
    const BitVec load = d.expand(*seed);
    for (const std::size_t cell : mask.set_bits()) {
      EXPECT_EQ(load.get(cell), values.get(cell));
    }
  }
}

TEST(Decompressor, AllDontCareSolvesTrivially) {
  const StimulusDecompressor d = make(16, {2, 8});
  const auto seed = d.solve_seed(BitVec(16), BitVec(16));
  ASSERT_TRUE(seed.has_value());
  EXPECT_EQ(seed->size(), 16u);
}

TEST(Decompressor, OverconstrainedRandomCareBitsEventuallyFail) {
  // 64 random care VALUES against a 16-bit seed: each extra constraint
  // halves the odds; across trials at least one must be unencodable.
  const StimulusDecompressor d = make(16, {4, 16});
  Rng rng(23);
  int failures = 0;
  for (int iter = 0; iter < 10; ++iter) {
    BitVec mask(64, true);
    BitVec values(64);
    for (std::size_t i = 0; i < 64; ++i) {
      if (rng.chance(0.5)) values.set(i);
    }
    if (!d.solve_seed(mask, values)) ++failures;
  }
  EXPECT_GT(failures, 0);
}

TEST(Decompressor, CompressionRoundTrip) {
  const ScanGeometry geo{4, 16};
  const StimulusDecompressor d = make(32, geo);
  // Patterns with a handful of care bits.
  Rng rng(31);
  std::vector<TestPattern> patterns;
  for (int i = 0; i < 12; ++i) {
    TestPattern p;
    p.pi = {Lv::k1, Lv::kX};
    p.scan_in.assign(geo.num_cells(), Lv::kX);
    for (int k = 0; k < 10; ++k) {
      p.scan_in[rng.below(geo.num_cells())] =
          rng.chance(0.5) ? Lv::k1 : Lv::k0;
    }
    patterns.push_back(p);
  }
  const CompressionResult r = compress_patterns(d, patterns);
  EXPECT_TRUE(r.failed_patterns.empty());
  ASSERT_EQ(r.seeds.size(), patterns.size());
  EXPECT_GT(r.compression_ratio(), 1.5);
  for (std::size_t i = 0; i < r.seeds.size(); ++i) {
    const TestPattern expanded = decompress_pattern(d, r.seeds[i]);
    ASSERT_EQ(expanded.scan_in.size(), geo.num_cells());
    for (std::size_t cell = 0; cell < geo.num_cells(); ++cell) {
      if (is_definite(patterns[i].scan_in[cell])) {
        EXPECT_EQ(expanded.scan_in[cell], patterns[i].scan_in[cell])
            << "pattern " << i << " cell " << cell;
      } else {
        EXPECT_TRUE(is_definite(expanded.scan_in[cell]))
            << "don't-cares must be filled";
      }
    }
    EXPECT_EQ(expanded.pi[0], Lv::k1);
    EXPECT_EQ(expanded.pi[1], Lv::k0) << "X PIs ride as 0";
  }
}

TEST(Decompressor, DifferentPhaseSeedsGiveDifferentNetworks) {
  const ScanGeometry geo{4, 8};
  const StimulusDecompressor a = make(16, geo, 1);
  const StimulusDecompressor b = make(16, geo, 2);
  BitVec seed(16);
  seed.set(5);
  EXPECT_FALSE(a.expand(seed) == b.expand(seed));
}

TEST(Decompressor, ArgumentValidation) {
  EXPECT_THROW(
      StimulusDecompressor(FeedbackPolynomial::primitive(8), {2, 4}, 1, 0),
      std::invalid_argument);
  EXPECT_THROW(
      StimulusDecompressor(FeedbackPolynomial::primitive(8), {2, 4}, 1, 9),
      std::invalid_argument);
  const StimulusDecompressor d = make(8, {2, 4});
  EXPECT_THROW(d.expand(BitVec(7)), std::invalid_argument);
  EXPECT_THROW(d.solve_seed(BitVec(7), BitVec(8)), std::invalid_argument);
}

}  // namespace
}  // namespace xh
