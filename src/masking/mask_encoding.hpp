// Compressed tester encoding for partition masks (an extension beyond the
// paper, which accounts L·C raw bits per partition).
//
// Partition masks are extremely sparse — a handful of set bits out of up to
// half a million cells — so the mask ROM/tester payload compresses well with
// gap coding: the gaps between consecutive set bits (preceded by the set-bit
// count) are written as Elias-gamma codewords behind a one-bit raw-escape
// flag (dense masks ship verbatim), so the coded image never exceeds the raw
// image by more than the flag bit. Decoding is trivial hardware (a counter
// and a shifter). encode/decode round-trip exactly; the benches report how
// much of the proposed method's masking term this squeezes out.
#pragma once

#include <cstddef>

#include "util/bitvec.hpp"

namespace xh {

/// A gap-coded mask image.
struct EncodedMask {
  BitVec payload;           // the Elias-gamma bit stream
  std::size_t mask_size = 0;  // decoded width (cells)

  std::size_t bits() const { return payload.size(); }
};

/// Encodes @p mask (any width ≥ 1).
EncodedMask encode_mask(const BitVec& mask);

/// Exact inverse of encode_mask. Throws on a corrupt stream.
BitVec decode_mask(const EncodedMask& encoded);

/// Size-only shortcut (no payload materialization).
std::size_t encoded_mask_bits(const BitVec& mask);

}  // namespace xh
