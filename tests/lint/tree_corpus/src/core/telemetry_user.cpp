namespace fixture {

void emit(Trace* t) {
  obs_count(t, "core.known_metric", 1);
  obs_count(t, "core.unknown_metric", 1);
}

}  // namespace fixture
