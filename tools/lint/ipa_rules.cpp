// Interprocedural rule families (DESIGN.md §13): XH-IPA-001/002 and
// XH-RACE-001/002 over the whole-model call graph and per-function
// summaries. Unlike the flow tier these rules reason ACROSS function
// boundaries — a discarded status is a bug even when the status type is
// only visible in the callee's signature, and the service/thread-pool
// seam (what a posted callable captures, consults and locks) is invisible
// to any single function's CFG.
//
// Findings are RAW (suppressions not applied); analyze_tree merges them
// into the per-path raw sets so the XH-SUP-001 audit sees them.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/cfg.hpp"
#include "lint/dataflow.hpp"
#include "lint/lint_core.hpp"
#include "lint/project_model.hpp"
#include "lint/summaries.hpp"
#include "lint/text_scan.hpp"

namespace xh::lint {
namespace {

void report(std::vector<Finding>& out, const std::string& path,
            std::size_t line, const std::string& rule,
            const std::string& message) {
  out.push_back({path, line, rule, message});
}

// ---- XH-IPA-001: status-bearing result discarded across a call ---------
//
// A bare-statement call `helper();` whose every resolved target returns a
// status-like type (xh::Diagnostics, *Status, *Result, ...) throws the
// outcome away. The per-file XH-ERR rules only see [[nodiscard]]-marked
// names; this one works from the callee's actual signature, so it catches
// the transitive case where neither caller nor callsite mentions the type.

/// Parses @p text as exactly one call statement (`chain(...)` with the
/// argument list closing at the end) and returns the called identifier,
/// or "" when the statement has any other shape. `(void)`-prefixed casts
/// are deliberate discards and return "".
std::string bare_call_callee(const std::string& text) {
  std::string t = text;
  while (!t.empty() && (t.back() == ';' || t.back() == ' ')) t.pop_back();
  if (t.empty() || starts_with(t, "(void)")) return "";
  std::size_t p = 0;
  if (!is_ident_char(t[0]) || (t[0] >= '0' && t[0] <= '9')) return "";
  std::string last;
  while (p < t.size() && is_ident_char(t[p])) ++p;
  last = t.substr(0, p);
  while (true) {
    if (p + 1 < t.size() && t[p] == ':' && t[p + 1] == ':') {
      p += 2;
    } else if (p < t.size() && t[p] == '.') {
      p += 1;
    } else if (p + 1 < t.size() && t[p] == '-' && t[p + 1] == '>') {
      p += 2;
    } else {
      break;
    }
    const std::size_t b = p;
    while (p < t.size() && is_ident_char(t[p])) ++p;
    if (p == b) return "";
    last = t.substr(b, p - b);
  }
  while (p < t.size() && t[p] == ' ') ++p;
  if (p >= t.size() || t[p] != '(') return "";
  int depth = 0;
  for (; p < t.size(); ++p) {
    if (t[p] == '(') ++depth;
    if (t[p] == ')' && --depth == 0) {
      return p + 1 == t.size() ? last : "";
    }
  }
  return "";
}

void rule_ipa001(const CallGraph& cg, const SummarySet& sums,
                 const ProjectModel& model, std::vector<Finding>& out) {
  for (const CgFunction& fn : cg.functions) {
    for (std::size_t n = 0; n < fn.cfg.nodes.size(); ++n) {
      const CfgNode& node = fn.cfg.nodes[n];
      if (node.kind != CfgNode::Kind::kStatement) continue;
      const std::string callee = bare_call_callee(node.text);
      if (callee.empty()) continue;
      // [[nodiscard]] callees are already the per-file tier's business.
      if (model.symbols.nodiscard.count(callee) != 0) continue;
      for (const CallSite& site : fn.calls) {
        if (site.node != n || site.callee != callee || site.deferred ||
            site.targets.empty()) {
          continue;
        }
        bool all_status = true;
        for (const std::size_t t : site.targets) {
          all_status = all_status && sums.summaries[t].returns_status;
        }
        if (!all_status) break;
        const CgFunction& target = cg.functions[site.targets.front()];
        report(out, fn.path, node.line, "XH-IPA-001",
               "result of '" + target.display + "' (returns '" +
                   target.cfg.return_type +
                   "') is discarded; check it or cast to (void) to "
                   "acknowledge the drop");
        break;
      }
    }
  }
}

// ---- XH-IPA-002: blockable posted callable never consults the token ----
//
// A callable handed to ThreadPool::post from a function that HAS a
// CancelToken in scope, where the callable (or what it calls) can block
// but neither the body nor any resolved deferred callee ever consults a
// token: shutdown/cancel cannot interrupt it.

bool body_consults(const std::string& body,
                   const std::vector<std::string>& tokens) {
  if (has_member_call(body, "stop_requested") ||
      has_member_call(body, "expired")) {
    return true;
  }
  for (const std::string& tok : tokens) {
    if (is_use(body, tok)) return true;
  }
  return false;
}

void rule_ipa002(const CallGraph& cg, const SummarySet& sums,
                 std::vector<Finding>& out) {
  for (const CgFunction& fn : cg.functions) {
    const std::vector<std::string> tokens = token_names(fn.cfg);
    if (tokens.empty()) continue;
    for (std::size_t n = 0; n < fn.cfg.nodes.size(); ++n) {
      const CfgNode& node = fn.cfg.nodes[n];
      if (!has_member_call(node.text, "post")) continue;
      const std::vector<LambdaInfo> lambdas = lambdas_in(node.text);
      if (lambdas.empty()) continue;
      const LambdaInfo& l = lambdas.front();
      const std::string body =
          node.text.substr(l.body_begin, l.body_end - l.body_begin);
      if (body_consults(body, tokens)) continue;
      bool consults_via_callee = false;
      bool blockable = blocking_text(body);
      for (const CallSite& site : fn.calls) {
        if (site.node != n || !site.deferred) continue;
        for (const std::size_t t : site.targets) {
          if (sums.summaries[t].consults_token) consults_via_callee = true;
          if (sums.summaries[t].can_block) blockable = true;
        }
      }
      if (consults_via_callee || !blockable) continue;
      report(out, fn.path, node.line, "XH-IPA-002",
             "callable posted from '" + fn.display +
                 "' can block but never consults the in-scope CancelToken "
                 "'" + tokens.front() +
                 "'; cancellation cannot interrupt it");
    }
  }
}

// ---- XH-RACE-001: posted callable captures a dying local by reference --
//
// `pool.post([&x]{...})` where x is a local/parameter of the posting
// function and some CFG path reaches the function exit without passing a
// drain/join barrier: the callable can run after x's storage is gone.

bool barrier_node(const CfgNode& node) {
  for (const char* b : {"drain", "join", "wait_all", "wait", "wait_for",
                        "wait_until"}) {
    if (has_ident(node.text, b)) return true;
  }
  return false;
}

/// Local variable and parameter names of @p fn (fields — trailing
/// underscore by repo convention — excluded).
std::set<std::string> frame_names(const FunctionCfg& cfg) {
  std::set<std::string> out;
  // Parameters: last identifier of each comma-separated declarator.
  std::size_t start = 0;
  int depth = 0;
  const std::string params = cfg.params;
  for (std::size_t i = 0; i <= params.size(); ++i) {
    if (i == params.size() || (params[i] == ',' && depth == 0)) {
      const std::string piece = params.substr(start, i - start);
      std::size_t e = piece.size();
      while (e > 0 && piece[e - 1] == ' ') --e;
      std::size_t b = e;
      while (b > 0 && is_ident_char(piece[b - 1])) --b;
      if (b < e) out.insert(piece.substr(b, e - b));
      start = i + 1;
    } else if (params[i] == '(' || params[i] == '<') {
      ++depth;
    } else if (params[i] == ')' || params[i] == '>') {
      --depth;
    }
  }
  // Locals: identifiers governed by a type word in a statement node.
  for (const CfgNode& node : cfg.nodes) {
    if (node.kind != CfgNode::Kind::kStatement) continue;
    const std::string& t = node.text;
    std::size_t i = 0;
    while (i < t.size()) {
      if (!is_ident_char(t[i])) {
        ++i;
        continue;
      }
      std::size_t e = i;
      while (e < t.size() && is_ident_char(t[e])) ++e;
      const std::string word = t.substr(i, e - i);
      const std::string type = type_word_before(t, i);
      if (!type.empty() && type != "return" && type != "else" &&
          type != "case" && type != "new" && type != "delete" &&
          type != "throw" && type != "const" &&
          !(e < t.size() && t[e] == '(')) {
        out.insert(word);
      }
      i = e;
    }
  }
  std::set<std::string> filtered;
  for (const std::string& name : out) {
    if (!name.empty() && name.back() != '_' && name != "this") {
      filtered.insert(name);
    }
  }
  return filtered;
}

void rule_race001(const CallGraph& cg, std::vector<Finding>& out) {
  for (const CgFunction& fn : cg.functions) {
    std::set<std::string> frame;
    bool frame_ready = false;
    for (std::size_t n = 0; n < fn.cfg.nodes.size(); ++n) {
      const CfgNode& node = fn.cfg.nodes[n];
      if (!has_member_call(node.text, "post")) continue;
      const std::vector<LambdaInfo> lambdas = lambdas_in(node.text);
      if (lambdas.empty()) continue;
      if (!frame_ready) {
        frame = frame_names(fn.cfg);
        frame_ready = true;
      }
      const LambdaInfo& l = lambdas.front();
      const std::string caps =
          node.text.substr(l.cap_begin, l.cap_end - l.cap_begin);
      const std::string body =
          node.text.substr(l.body_begin, l.body_end - l.body_begin);
      // Captured-by-reference frame names.
      std::vector<std::string> hazards;
      bool default_ref = false;
      std::size_t start = 0;
      for (std::size_t i = 0; i <= caps.size(); ++i) {
        if (i != caps.size() && caps[i] != ',') continue;
        std::string entry = caps.substr(start, i - start);
        start = i + 1;
        std::size_t b = 0, e = entry.size();
        while (b < e && entry[b] == ' ') ++b;
        while (e > b && entry[e - 1] == ' ') --e;
        entry = entry.substr(b, e - b);
        if (entry == "&") {
          default_ref = true;
        } else if (!entry.empty() && entry[0] == '&' &&
                   entry.find('=') == std::string::npos) {
          const std::string name = entry.substr(1);
          if (frame.count(name) != 0) hazards.push_back(name);
        }
      }
      if (default_ref) {
        for (const std::string& name : frame) {
          if (is_use(body, name)) hazards.push_back(name);
        }
      }
      if (hazards.empty()) continue;
      // Safe only when EVERY path from the post to the exit crosses a
      // drain/join barrier (then the frame outlives the callable).
      const bool escapes = may_reach_exit(
          fn.cfg, n,
          [&](std::size_t v) { return barrier_node(fn.cfg.nodes[v]); });
      if (!escapes) continue;
      report(out, fn.path, node.line, "XH-RACE-001",
             "callable posted from '" + fn.display +
                 "' captures local '" + hazards.front() +
                 "' by reference, and a path reaches the end of its scope "
                 "without a drain/join barrier");
    }
  }
}

// ---- XH-RACE-002: lock-order inversion / lock held across a post -------
//
// (a) Two functions (or paths) establish opposite nested acquisition
//     orders (A before B somewhere, B before A elsewhere): the classic
//     ABBA deadlock. Orders come from the summaries' witness list, which
//     includes pairs formed by CALLING a locking function while holding.
// (b) A callable is posted while a mutex is must-held and a resolved
//     deferred target re-acquires that same mutex: the callable
//     serializes against (or deadlocks with) its own posting scope.

void rule_race002(const CallGraph& cg, const SummarySet& sums,
                  std::vector<Finding>& out) {
  // (a) global inversions.
  std::map<std::pair<std::string, std::string>, const LockPairWitness*>
      first;
  for (const LockPairWitness& w : sums.witnesses) {
    first.emplace(std::make_pair(w.outer, w.inner), &w);
  }
  for (const auto& [pair, w] : first) {
    const auto rev = first.find({pair.second, pair.first});
    if (rev == first.end()) continue;
    // Report each direction at its own witness; the reverse direction
    // produces the matching finding at the other site.
    report(out, w->path, w->line, "XH-RACE-002",
           "lock-order inversion: '" + pair.first + "' is held while '" +
               pair.second + "' is acquired in '" + w->function +
               "', but the opposite order exists at " + rev->second->path +
               ":" + std::to_string(rev->second->line) + " ('" +
               rev->second->function + "')");
  }

  // (b) post under lock re-acquired by the posted work.
  for (std::size_t f = 0; f < cg.functions.size(); ++f) {
    const CgFunction& fn = cg.functions[f];
    std::vector<std::set<std::string>> held;
    bool held_ready = false;
    for (std::size_t n = 0; n < fn.cfg.nodes.size(); ++n) {
      if (!has_member_call(fn.cfg.nodes[n].text, "post")) continue;
      if (!held_ready) {
        held = must_hold(fn);
        held_ready = true;
      }
      if (held[n].empty()) continue;
      for (const CallSite& site : fn.calls) {
        if (site.node != n || !site.deferred) continue;
        for (const std::size_t t : site.targets) {
          for (const std::string& mu :
               sums.summaries[t].locks_acquired) {
            if (held[n].count(mu) == 0) continue;
            report(out, fn.path, fn.cfg.nodes[n].line, "XH-RACE-002",
                   "'" + fn.display + "' posts a callable while holding '" +
                       mu + "', and the posted work ('" +
                       cg.functions[t].display +
                       "') re-acquires it; move the post outside the "
                       "locked scope");
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<Finding> ipa_findings(const ProjectModel& model) {
  const CallGraph cg = build_call_graph(model);
  const SummarySet sums = compute_summaries(cg);
  std::vector<Finding> out;
  rule_ipa001(cg, sums, model, out);
  rule_ipa002(cg, sums, out);
  rule_race001(cg, out);
  rule_race002(cg, sums, out);
  return out;
}

}  // namespace xh::lint
