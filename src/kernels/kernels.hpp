// Runtime-dispatched kernel layer: one capability table for the bit-level
// hot loops (fused and_count / and_not_count over word spans, bulk XOR /
// popcount, GF(2) row-reduce / solve), selected once per process.
//
// Design (DESIGN.md §14):
//   - backend_scalar.hpp is the semantic reference. It is constexpr, and
//     every public wrapper here branches on std::is_constant_evaluated():
//     constant evaluation always executes the scalar reference, so the
//     static_assert proofs in tests/static/ keep checking the exact
//     semantics every other backend must reproduce.
//   - backend_avx2.cpp / backend_avx512.cpp are explicit SIMD tilings,
//     reachable only through the dispatched table. Selection is by runtime
//     CPUID probe (__builtin_cpu_supports), overridable with the XH_ISA
//     environment variable or kernels::select() (the CLI's --isa flag).
//   - GF(2) elimination additionally carries an algorithmic choice: the
//     naive tracked Gauss-Jordan mirror, or a Method-of-Four-Russians
//     (M4RM) blocked variant gated by a matrix-size cost model. Both are
//     bit-identical to gf2_ref::eliminate_reference by construction —
//     pivots are chosen in the same order and each reduced row is the
//     unique member of its row-span coset that is zero on the pivot
//     columns — so ISA and algorithm never change results, only speed.
//
// Every dispatched operation is exact integer arithmetic; cross-backend
// bit-identity is enforced by tests/kernels/ and by the bench_partitioner
// smoke gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <type_traits>
#include <vector>

#include "gf2/matrix.hpp"
#include "kernels/backend_scalar.hpp"
#include "util/bitvec.hpp"
#include "util/check.hpp"

namespace xh {

class Trace;

namespace kernels {

/// Instruction-set tiers the dispatcher can select between. kAuto resolves
/// to the best tier the running CPU supports; the numeric values are stable
/// (they appear in telemetry as the kernel.isa gauge and in checkpoints).
enum class Isa : int {
  kAuto = 0,
  kScalar = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// One backend's entry points. All functions operate on spans of 64-bit
/// words; BitVec-level convenience wrappers below add the size checks and
/// the constant-evaluation branch.
struct Kernels {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";
  std::size_t (*popcount_words)(const std::uint64_t*, std::size_t) = nullptr;
  std::size_t (*and_count_words)(const std::uint64_t*, const std::uint64_t*,
                                 std::size_t) = nullptr;
  std::size_t (*and_not_count_words)(const std::uint64_t*,
                                     const std::uint64_t*,
                                     std::size_t) = nullptr;
  void (*xor_words)(std::uint64_t*, const std::uint64_t*,
                    std::size_t) = nullptr;
  void (*and_words_into)(std::uint64_t*, const std::uint64_t*,
                         const std::uint64_t*, std::size_t) = nullptr;
};

/// Canonical lowercase name ("auto", "scalar", "avx2", "avx512").
const char* isa_name(Isa isa);

/// Parses an isa_name() string. Returns false (leaving *out untouched) for
/// anything else.
bool parse_isa(std::string_view name, Isa* out);

/// True when the running CPU can execute @p isa (kAuto and kScalar always
/// can).
bool isa_supported(Isa isa);

/// Best tier the running CPU supports: avx512 > avx2 > scalar.
Isa detect_best();

/// The table for @p isa; kAuto resolves through detect_best(). Requires
/// isa_supported(isa) — asking for an unsupported tier is a checked error.
const Kernels& table_for(Isa isa);

/// Process-wide active table. First use resolves the XH_ISA environment
/// override (invalid or unsupported values silently fall back to kAuto —
/// the CLI re-validates the variable to warn); thereafter select() is the
/// only way to change it.
const Kernels& active();

/// Installs @p isa as the active table. Returns false (keeping the current
/// table) when the CPU does not support it. kAuto re-runs detection.
bool select(Isa isa);

// ---- BitVec-level wrappers ------------------------------------------------
//
// Constant evaluation runs the scalar reference (so these are usable inside
// static_asserts); runtime goes through the dispatched table.

/// popcount(a & b) without materializing the intersection. Requires
/// a.size() == b.size().
constexpr std::size_t and_count(const BitVec& a, const BitVec& b) {
  XH_REQUIRE(a.size() == b.size(), "BitVec size mismatch in and_count");
  if (std::is_constant_evaluated()) {
    return scalar::and_count_words(a.word_data(), b.word_data(),
                                   a.word_count());
  }
  return active().and_count_words(a.word_data(), b.word_data(),
                                  a.word_count());
}

/// popcount(a & ~b) without materializing the difference. Requires
/// a.size() == b.size().
constexpr std::size_t and_not_count(const BitVec& a, const BitVec& b) {
  XH_REQUIRE(a.size() == b.size(), "BitVec size mismatch in and_not_count");
  if (std::is_constant_evaluated()) {
    return scalar::and_not_count_words(a.word_data(), b.word_data(),
                                       a.word_count());
  }
  return active().and_not_count_words(a.word_data(), b.word_data(),
                                      a.word_count());
}

/// Number of set bits in @p v (dispatched BitVec::count()).
constexpr std::size_t popcount(const BitVec& v) {
  if (std::is_constant_evaluated()) {
    return scalar::popcount_words(v.word_data(), v.word_count());
  }
  return active().popcount_words(v.word_data(), v.word_count());
}

/// dst ^= src (dispatched BitVec::operator^=). Requires equal sizes. Safe
/// for the tail invariant: both tails are zero, so the XOR tail is zero.
constexpr void xor_into(BitVec& dst, const BitVec& src) {
  XH_REQUIRE(dst.size() == src.size(), "BitVec size mismatch in xor_into");
  if (std::is_constant_evaluated()) {
    scalar::xor_words(dst.word_data(), src.word_data(), dst.word_count());
    return;
  }
  active().xor_words(dst.word_data(), src.word_data(), dst.word_count());
}

/// dst = a & b (dispatched intersection). Requires equal sizes; dst is
/// resized to match. Tail-safe for the same reason as xor_into.
constexpr void and_into(BitVec& dst, const BitVec& a, const BitVec& b) {
  XH_REQUIRE(a.size() == b.size(), "BitVec size mismatch in and_into");
  dst.resize(a.size());
  if (std::is_constant_evaluated()) {
    scalar::and_words_into(dst.word_data(), a.word_data(), b.word_data(),
                           dst.word_count());
    return;
  }
  active().and_words_into(dst.word_data(), a.word_data(), b.word_data(),
                          dst.word_count());
}

// ---- GF(2) elimination / solve -------------------------------------------

/// Algorithm choice for eliminate()/solve(). kAuto applies the cost model:
/// M4RM pays a 2^k-row table build per pivot block, which amortizes only
/// when many rows share each block, so it engages at kM4rmAutoMinRows.
enum class Gf2Policy : int {
  kAuto = 0,
  kNaive = 1,
  kM4rm = 2,
};

/// Row-count threshold where kAuto switches from naive to M4RM.
inline constexpr std::size_t kM4rmAutoMinRows = 128;

namespace detail {
Elimination eliminate_runtime(const Gf2Matrix& m, Gf2Policy policy);
std::vector<BitVec> x_free_combinations_runtime(const Gf2Matrix& m,
                                                Gf2Policy policy);
std::optional<BitVec> solve_runtime(const Gf2Matrix& m, const BitVec& b,
                                    Gf2Policy policy);
/// Bumps the kernel.m4rm_tables_built counter (gf2_engine.cpp internal).
void note_m4rm_table_built();
}  // namespace detail

/// Tracked Gaussian elimination (see Elimination). Bit-identical to
/// gf2_ref::eliminate_reference for every policy and ISA.
constexpr Elimination eliminate(const Gf2Matrix& m,
                                Gf2Policy policy = Gf2Policy::kAuto) {
  if (std::is_constant_evaluated()) return gf2_ref::eliminate_reference(m);
  return detail::eliminate_runtime(m, policy);
}

/// Basis of the left null space of @p m (X-free signature combinations).
constexpr std::vector<BitVec> x_free_combinations(
    const Gf2Matrix& m, Gf2Policy policy = Gf2Policy::kAuto) {
  if (std::is_constant_evaluated()) {
    return gf2_ref::x_free_combinations_reference(m);
  }
  return detail::x_free_combinations_runtime(m, policy);
}

/// Solves A·x = b over GF(2); nullopt when inconsistent. @p b must have
/// m.rows() bits.
constexpr std::optional<BitVec> solve(const Gf2Matrix& m, const BitVec& b,
                                      Gf2Policy policy = Gf2Policy::kAuto) {
  if (std::is_constant_evaluated()) return gf2_ref::solve_reference(m, b);
  return detail::solve_runtime(m, b, policy);
}

// ---- Telemetry ------------------------------------------------------------

/// Monotonic process-wide kernel-layer statistics snapshot.
struct KernelStatsSnapshot {
  std::uint64_t m4rm_tables_built = 0;
};

KernelStatsSnapshot kernel_stats();

/// Exports kernel.* instruments into @p trace (no-op on nullptr): the
/// kernel.isa gauge (numeric Isa of the active table) and the
/// kernel.m4rm_tables_built counter.
void export_kernel_telemetry(Trace* trace);

}  // namespace kernels
}  // namespace xh
