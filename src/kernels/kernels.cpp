// Kernel dispatcher: CPUID probing, the per-ISA capability tables, the
// process-wide active-table slot, and the kernel.* telemetry export.
#include "kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "kernels/backend_simd.hpp"
#include "obs/trace.hpp"

namespace xh::kernels {
namespace {

constexpr Kernels kScalarTable = {
    Isa::kScalar,
    "scalar",
    &scalar::popcount_words,
    &scalar::and_count_words,
    &scalar::and_not_count_words,
    &scalar::xor_words,
    &scalar::and_words_into,
};

#if XH_KERNELS_HAVE_X86
constexpr Kernels kAvx2Table = {
    Isa::kAvx2,
    "avx2",
    &avx2::popcount_words,
    &avx2::and_count_words,
    &avx2::and_not_count_words,
    &avx2::xor_words,
    &avx2::and_words_into,
};

constexpr Kernels kAvx512Table = {
    Isa::kAvx512,
    "avx512",
    &avx512::popcount_words,
    &avx512::and_count_words,
    &avx512::and_not_count_words,
    &avx512::xor_words,
    &avx512::and_words_into,
};
#endif  // XH_KERNELS_HAVE_X86

/// First-use default: honor XH_ISA when it names a supported tier, fall
/// back to auto-detection otherwise. The fallback is silent by design —
/// this can run from any thread of any embedder, so surfacing the
/// diagnostic is the CLI's job (it re-validates XH_ISA, the same split the
/// XH_XM_BACKEND override uses in service/job_runner.cpp).
Isa initial_isa() {
  if (const char* env = std::getenv("XH_ISA")) {
    Isa requested = Isa::kAuto;
    if (parse_isa(env, &requested) && isa_supported(requested)) {
      return requested;
    }
  }
  return Isa::kAuto;
}

std::atomic<const Kernels*>& active_slot() {
  static std::atomic<const Kernels*> slot{&table_for(initial_isa())};
  return slot;
}

std::atomic<std::uint64_t>& m4rm_tables_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAuto: return "auto";
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

bool parse_isa(std::string_view name, Isa* out) {
  if (name == "auto") {
    *out = Isa::kAuto;
  } else if (name == "scalar") {
    *out = Isa::kScalar;
  } else if (name == "avx2") {
    *out = Isa::kAvx2;
  } else if (name == "avx512") {
    *out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

// The CPUID probes are selected at function granularity (not with #if
// inside a shared body) so each definition is a complete single-exit
// function — the lint CFG self-scan sees both preprocessor arms.
#if XH_KERNELS_HAVE_X86

namespace {
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
bool cpu_has_avx512() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0;
}
}  // namespace

#else

namespace {
bool cpu_has_avx2() { return false; }
bool cpu_has_avx512() { return false; }
}  // namespace

#endif

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::kAuto:
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return cpu_has_avx2();
    case Isa::kAvx512:
      return cpu_has_avx512();
  }
  return false;
}

Isa detect_best() {
  if (isa_supported(Isa::kAvx512)) return Isa::kAvx512;
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

const Kernels& table_for(Isa isa) {
  if (isa == Isa::kAuto) isa = detect_best();
  XH_REQUIRE(isa_supported(isa), "requested kernel ISA not supported here");
#if XH_KERNELS_HAVE_X86
  switch (isa) {
    case Isa::kAvx2: return kAvx2Table;
    case Isa::kAvx512: return kAvx512Table;
    case Isa::kAuto:
    case Isa::kScalar:
      break;
  }
#endif
  return kScalarTable;
}

const Kernels& active() {
  return *active_slot().load(std::memory_order_acquire);
}

bool select(Isa isa) {
  if (!isa_supported(isa)) return false;
  active_slot().store(&table_for(isa), std::memory_order_release);
  return true;
}

namespace detail {

void note_m4rm_table_built() {
  // Pure monotonic accounting, same shape as the XMatrixStore note_* seam:
  // nothing is published under this counter's order, only the atomicity of
  // the increment matters.
  m4rm_tables_counter().fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

KernelStatsSnapshot kernel_stats() {
  KernelStatsSnapshot snapshot;
  snapshot.m4rm_tables_built =
      m4rm_tables_counter().load(std::memory_order_relaxed);
  return snapshot;
}

void export_kernel_telemetry(Trace* trace) {
  if (trace == nullptr) return;
  obs_gauge(trace, "kernel.isa",
            static_cast<double>(static_cast<int>(active().isa)));
  obs_count(trace, "kernel.m4rm_tables_built",
            kernel_stats().m4rm_tables_built);
}

}  // namespace xh::kernels
