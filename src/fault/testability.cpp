#include "fault/testability.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xh {
namespace {

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t sum = static_cast<std::uint64_t>(a) + b;
  return sum >= kScoapInf ? kScoapInf : static_cast<std::uint32_t>(sum);
}

}  // namespace

Testability compute_scoap(const Netlist& nl) {
  XH_REQUIRE(nl.finalized(), "SCOAP requires a finalized netlist");
  Testability t;
  t.cc0.assign(nl.gate_count(), kScoapInf);
  t.cc1.assign(nl.gate_count(), kScoapInf);
  t.co.assign(nl.gate_count(), kScoapInf);

  // ---- controllability: forward over the topological order ---------------
  for (const GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    const auto c0 = [&](std::size_t k) { return t.cc0[g.fanin[k]]; };
    const auto c1 = [&](std::size_t k) { return t.cc1[g.fanin[k]]; };
    switch (g.type) {
      case GateType::kInput:
        t.cc0[id] = 1;
        t.cc1[id] = 1;
        break;
      case GateType::kDff:
        if (g.scanned) {
          t.cc0[id] = 1;
          t.cc1[id] = 1;
        }  // unscanned: uncontrollable (stays ∞)
        break;
      case GateType::kConst0:
        t.cc0[id] = 0;
        break;
      case GateType::kConst1:
        t.cc1[id] = 0;
        break;
      case GateType::kBuf:
        t.cc0[id] = sat_add(c0(0), 1);
        t.cc1[id] = sat_add(c1(0), 1);
        break;
      case GateType::kNot:
        t.cc0[id] = sat_add(c1(0), 1);
        t.cc1[id] = sat_add(c0(0), 1);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        std::uint32_t all1 = 0;
        std::uint32_t min0 = kScoapInf;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) {
          all1 = sat_add(all1, c1(k));
          min0 = std::min(min0, c0(k));
        }
        const std::uint32_t out1 = sat_add(all1, 1);
        const std::uint32_t out0 = sat_add(min0, 1);
        t.cc1[id] = g.type == GateType::kAnd ? out1 : out0;
        t.cc0[id] = g.type == GateType::kAnd ? out0 : out1;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        std::uint32_t all0 = 0;
        std::uint32_t min1 = kScoapInf;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) {
          all0 = sat_add(all0, c0(k));
          min1 = std::min(min1, c1(k));
        }
        const std::uint32_t out0 = sat_add(all0, 1);
        const std::uint32_t out1 = sat_add(min1, 1);
        t.cc0[id] = g.type == GateType::kOr ? out0 : out1;
        t.cc1[id] = g.type == GateType::kOr ? out1 : out0;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Fold pairwise: cost of parity 0 / parity 1.
        std::uint32_t p0 = c0(0);
        std::uint32_t p1 = c1(0);
        for (std::size_t k = 1; k < g.fanin.size(); ++k) {
          const std::uint32_t n0 =
              std::min(sat_add(p0, c0(k)), sat_add(p1, c1(k)));
          const std::uint32_t n1 =
              std::min(sat_add(p0, c1(k)), sat_add(p1, c0(k)));
          p0 = n0;
          p1 = n1;
        }
        p0 = sat_add(p0, 1);
        p1 = sat_add(p1, 1);
        t.cc0[id] = g.type == GateType::kXor ? p0 : p1;
        t.cc1[id] = g.type == GateType::kXor ? p1 : p0;
        break;
      }
      case GateType::kMux: {
        const std::uint32_t s0 = c0(0);
        const std::uint32_t s1 = c1(0);
        t.cc0[id] = sat_add(
            std::min(sat_add(s0, c0(1)), sat_add(s1, c0(2))), 1);
        t.cc1[id] = sat_add(
            std::min(sat_add(s0, c1(1)), sat_add(s1, c1(2))), 1);
        break;
      }
      case GateType::kTristate:
        // Driving a definite value requires the enable on.
        t.cc0[id] = sat_add(sat_add(c1(0), c0(1)), 1);
        t.cc1[id] = sat_add(sat_add(c1(0), c1(1)), 1);
        break;
      case GateType::kBus: {
        // Optimistic: cheapest single driver provides the value (other
        // drivers' Z-ness is ignored, the usual SCOAP simplification).
        std::uint32_t min0 = kScoapInf;
        std::uint32_t min1 = kScoapInf;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) {
          min0 = std::min(min0, c0(k));
          min1 = std::min(min1, c1(k));
        }
        t.cc0[id] = sat_add(min0, 1);
        t.cc1[id] = sat_add(min1, 1);
        break;
      }
    }
  }

  // ---- observability: backward -------------------------------------------
  // Observation points: D inputs of scanned flops.
  for (const GateId dff : nl.dffs()) {
    if (nl.gate(dff).scanned) {
      t.co[nl.gate(dff).fanin[0]] = 0;
    }
  }
  const auto& topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kDff || g.type == GateType::kInput) continue;
    const std::uint32_t out_co = t.co[id];
    if (out_co >= kScoapInf) continue;
    for (std::size_t k = 0; k < g.fanin.size(); ++k) {
      std::uint32_t side = 0;  // cost of sensitizing the other inputs
      switch (g.type) {
        case GateType::kAnd:
        case GateType::kNand:
          for (std::size_t j = 0; j < g.fanin.size(); ++j) {
            if (j != k) side = sat_add(side, t.cc1[g.fanin[j]]);
          }
          break;
        case GateType::kOr:
        case GateType::kNor:
          for (std::size_t j = 0; j < g.fanin.size(); ++j) {
            if (j != k) side = sat_add(side, t.cc0[g.fanin[j]]);
          }
          break;
        case GateType::kXor:
        case GateType::kXnor:
          for (std::size_t j = 0; j < g.fanin.size(); ++j) {
            if (j != k) {
              side = sat_add(side, std::min(t.cc0[g.fanin[j]],
                                            t.cc1[g.fanin[j]]));
            }
          }
          break;
        case GateType::kMux:
          if (k == 0) {
            // Select observable when the data inputs differ.
            side = std::min(
                sat_add(t.cc0[g.fanin[1]], t.cc1[g.fanin[2]]),
                sat_add(t.cc1[g.fanin[1]], t.cc0[g.fanin[2]]));
          } else {
            // Data input observable when selected.
            side = (k == 1) ? t.cc0[g.fanin[0]] : t.cc1[g.fanin[0]];
          }
          break;
        case GateType::kTristate:
          side = (k == 1) ? t.cc1[g.fanin[0]] : 0;
          break;
        default:
          break;  // BUF/NOT/BUS drivers: no side cost
      }
      const std::uint32_t through = sat_add(sat_add(out_co, side), 1);
      t.co[g.fanin[k]] = std::min(t.co[g.fanin[k]], through);
    }
  }
  return t;
}

}  // namespace xh
