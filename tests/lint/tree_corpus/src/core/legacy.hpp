#pragma once

namespace fixture {

struct LegacyCfg {
  int knobs = 0;
};

[[nodiscard]] int run_thing(int v);

[[nodiscard]] [[deprecated("use run_thing(int)")]]
int run_thing(const LegacyCfg& cfg);

[[deprecated("call run_thing instead")]]
int old_entry(int v);

}  // namespace fixture
