// corpus: XH-PARSE-001 must fire on the silent-junk parsing family.
#include <cstdlib>
#include <string>

int chains(const std::string& text) {
  return std::atoi(text.c_str());  // "foo" silently becomes 0
}

unsigned long patterns(const std::string& text) {
  return std::stoul(text);  // "12abc" silently becomes 12
}
