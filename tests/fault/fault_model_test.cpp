#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace xh {
namespace {

TEST(FaultModel, EnumerateCountsTwoPerSite) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\ng = AND(a, b)\nq = DFF(g)\n");
  const auto faults = enumerate_faults(nl);
  // Sites: a, b, g, q → 8 faults.
  EXPECT_EQ(faults.size(), 8u);
}

TEST(FaultModel, ConstantsSkipped) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nc = CONST1()\nq = AND(a, c)\n");
  const auto faults = enumerate_faults(nl);
  for (const auto& f : faults) {
    EXPECT_NE(nl.gate(f.gate).type, GateType::kConst1);
  }
  EXPECT_EQ(faults.size(), 4u);  // a and q
}

TEST(FaultModel, FaultNames) {
  const Netlist nl = read_bench_string("INPUT(a)\nOUTPUT(q)\nq = NOT(a)\n");
  EXPECT_EQ(fault_name(nl, {nl.find("q"), true}), "q/1");
  EXPECT_EQ(fault_name(nl, {nl.find("a"), false}), "a/0");
}

TEST(FaultModel, CollapseDropsSingleFanoutBufferChains) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nb1 = BUF(a)\nn1 = NOT(b1)\nq = BUF(n1)\n");
  const auto all = enumerate_faults(nl);
  const auto kept = collapse_faults(nl, all);
  // a drives only b1, b1 drives only n1, n1 drives only q: the three
  // follower faults pairs collapse onto a's pair.
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(kept.size(), 2u);
  for (const auto& f : kept) EXPECT_EQ(f.gate, nl.find("a"));
}

TEST(FaultModel, CollapseKeepsFanoutBranches) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\nx = NOT(a)\ny = BUF(a)\n");
  const auto kept = collapse_faults(nl, enumerate_faults(nl));
  // a has fanout 2: branch faults are NOT equivalent to the stem.
  EXPECT_EQ(kept.size(), 6u);
}

TEST(FaultModel, CollapseKeepsNonInverterGates) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = AND(a, b)\n");
  const auto all = enumerate_faults(nl);
  EXPECT_EQ(collapse_faults(nl, all).size(), all.size());
}

}  // namespace
}  // namespace xh
