#include "sim/comb_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/bench_io.hpp"

namespace xh {
namespace {

TEST(CombSim, EvaluatesSimpleGateCloud) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g_and = nl.add_gate(GateType::kAnd, {a, b}, "and");
  const GateId g_or = nl.add_gate(GateType::kOr, {a, b}, "or");
  const GateId g_xor = nl.add_gate(GateType::kXor, {a, b}, "xor");
  nl.mark_output(g_xor);
  nl.finalize();

  CombSim sim(nl);
  sim.set_input(a, Lv::k1);
  sim.set_input(b, Lv::k0);
  sim.evaluate();
  EXPECT_EQ(sim.value(g_and), Lv::k0);
  EXPECT_EQ(sim.value(g_or), Lv::k1);
  EXPECT_EQ(sim.value(g_xor), Lv::k1);
}

TEST(CombSim, XPropagatesPessimistically) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g_and = nl.add_gate(GateType::kAnd, {a, b}, "and");
  const GateId g_or = nl.add_gate(GateType::kOr, {a, b}, "or");
  nl.mark_output(g_or);
  nl.finalize();

  CombSim sim(nl);
  sim.set_input(a, Lv::kX);
  sim.set_input(b, Lv::k0);
  sim.evaluate();
  EXPECT_EQ(sim.value(g_and), Lv::k0) << "0 controls AND even with X";
  EXPECT_EQ(sim.value(g_or), Lv::kX);
}

TEST(CombSim, ReadBeforeEvaluateThrows) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  nl.mark_output(a);
  nl.finalize();
  CombSim sim(nl);
  EXPECT_THROW(sim.value(a), std::invalid_argument);
}

TEST(CombSim, RequiresFinalizedNetlist) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(CombSim{nl}, std::invalid_argument);
}

TEST(CombSim, DffStateAndClocking) {
  // q = DFF(xor(a, q)): toggles when a=1, holds when a=0.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(a, q)\n");
  const GateId q = nl.find("q");
  const GateId a = nl.find("a");

  CombSim sim(nl);
  sim.set_state(q, Lv::k0);
  sim.set_input(a, Lv::k1);
  sim.evaluate();
  EXPECT_EQ(sim.value(q), Lv::k0);
  EXPECT_EQ(sim.next_state(q), Lv::k1);
  sim.clock();
  sim.evaluate();
  EXPECT_EQ(sim.value(q), Lv::k1);
  EXPECT_EQ(sim.next_state(q), Lv::k0);
}

TEST(CombSim, UninitializedStateIsX) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(a, q)\n");
  CombSim sim(nl);
  sim.set_input(nl.find("a"), Lv::k1);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("q")), Lv::kX) << "power-up state unknown";
  EXPECT_EQ(sim.next_state(nl.find("q")), Lv::kX) << "X poisons the XOR";
}

TEST(CombSim, SetAllState) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\np = DFF(a)\n");
  CombSim sim(nl);
  sim.set_all_state(Lv::k1);
  sim.set_input(nl.find("a"), Lv::k0);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("q")), Lv::k1);
  EXPECT_EQ(sim.value(nl.find("p")), Lv::k1);
}

TEST(CombSim, TristateBusContentionMakesX) {
  const Netlist nl = read_bench_string(
      "INPUT(en1)\nINPUT(en2)\nINPUT(d1)\nINPUT(d2)\nOUTPUT(b)\n"
      "t1 = TRISTATE(en1, d1)\nt2 = TRISTATE(en2, d2)\nb = BUS(t1, t2)\n");
  CombSim sim(nl);
  const auto set = [&](const char* n, Lv v) { sim.set_input(nl.find(n), v); };

  // Single driver wins.
  set("en1", Lv::k1); set("en2", Lv::k0);
  set("d1", Lv::k1);  set("d2", Lv::k0);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("b")), Lv::k1);

  // Contention → X.
  set("en2", Lv::k1);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("b")), Lv::kX);

  // Agreement is not contention.
  set("d2", Lv::k1);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("b")), Lv::k1);

  // Floating bus → X.
  set("en1", Lv::k0); set("en2", Lv::k0);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("b")), Lv::kX);
}

TEST(CombSim, MuxEvaluation) {
  Netlist nl;
  const GateId s = nl.add_input("s");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId m = nl.add_gate(GateType::kMux, {s, a, b}, "m");
  nl.mark_output(m);
  nl.finalize();
  CombSim sim(nl);
  sim.set_input(s, Lv::k0);
  sim.set_input(a, Lv::k1);
  sim.set_input(b, Lv::k0);
  sim.evaluate();
  EXPECT_EQ(sim.value(m), Lv::k1);
  sim.set_input(s, Lv::k1);
  sim.evaluate();
  EXPECT_EQ(sim.value(m), Lv::k0);
  sim.set_input(s, Lv::kX);
  sim.evaluate();
  EXPECT_EQ(sim.value(m), Lv::kX);
  sim.set_input(b, Lv::k1);
  sim.evaluate();
  EXPECT_EQ(sim.value(m), Lv::k1) << "agreeing data dominates unknown select";
}

TEST(CombSim, FaultInjectionForcesValue) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g = nl.add_gate(GateType::kAnd, {a, b}, "g");
  const GateId o = nl.add_gate(GateType::kNot, {g}, "o");
  nl.mark_output(o);
  nl.finalize();

  CombSim sim(nl);
  sim.set_input(a, Lv::k1);
  sim.set_input(b, Lv::k1);
  sim.inject(CombSim::Fault{g, Lv::k0});  // g stuck-at-0
  sim.evaluate();
  EXPECT_EQ(sim.value(g), Lv::k0);
  EXPECT_EQ(sim.value(o), Lv::k1);
  sim.inject(std::nullopt);
  sim.evaluate();
  EXPECT_EQ(sim.value(o), Lv::k0);
}

TEST(CombSim, FaultValueMustBeDefinite) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  nl.mark_output(a);
  nl.finalize();
  CombSim sim(nl);
  EXPECT_THROW(sim.inject(CombSim::Fault{a, Lv::kX}), std::invalid_argument);
}

TEST(CombSim, S27MatchesKnownBehaviour) {
  // Reset s27 state to all zero, drive inputs, check G17 = NOT(G11).
  const char* s27 =
      "INPUT(G0)\nINPUT(G1)\nINPUT(G2)\nINPUT(G3)\nOUTPUT(G17)\n"
      "G5 = DFF(G10)\nG6 = DFF(G11)\nG7 = DFF(G13)\n"
      "G14 = NOT(G0)\nG8 = AND(G14, G6)\nG15 = OR(G12, G8)\n"
      "G16 = OR(G3, G8)\nG9 = NAND(G16, G15)\nG10 = NOR(G14, G11)\n"
      "G11 = OR(G5, G9)\nG12 = NOR(G1, G7)\nG13 = NAND(G2, G12)\n"
      "G17 = NOT(G11)\n";
  const Netlist nl = read_bench_string(s27, "s27");
  CombSim sim(nl);
  sim.set_all_state(Lv::k0);
  for (const GateId pi : nl.inputs()) sim.set_input(pi, Lv::k0);
  sim.evaluate();
  // G12 = NOR(0, 0) = 1; G15 = OR(1, G8); G14 = NOT(0) = 1; G8 = AND(1,0)=0;
  // G15 = 1; G16 = OR(0,0) = 0; G9 = NAND(0,1) = 1; G11 = OR(0,1) = 1;
  // G17 = NOT(1) = 0.
  EXPECT_EQ(sim.value(nl.find("G17")), Lv::k0);
  EXPECT_EQ(sim.value(nl.find("G11")), Lv::k1);
  EXPECT_EQ(sim.next_state(nl.find("G6")), Lv::k1);
}

}  // namespace
}  // namespace xh
