#include "sim/parallel_sim.hpp"

#include "util/check.hpp"

namespace xh {
namespace {

constexpr std::uint64_t kAll = ~0ULL;

// Lane classification helpers (Z absorbed to X where noted).
std::uint64_t def0(const LvPlane& a) { return ~a.p1 & ~a.p0; }
std::uint64_t def1(const LvPlane& a) { return ~a.p1 & a.p0; }
std::uint64_t unk(const LvPlane& a) { return a.p1; }  // X or Z
std::uint64_t x_lanes(const LvPlane& a) { return a.p1 & ~a.p0; }

LvPlane make(std::uint64_t ones, std::uint64_t xs) {
  // ones and xs must be disjoint; remaining lanes are 0.
  return LvPlane{ones, xs};
}

}  // namespace

void LvPlane::set(std::size_t slot, Lv v) {
  XH_REQUIRE(slot < 64, "plane slot out of range");
  const std::uint64_t bit = 1ULL << slot;
  const auto code = static_cast<std::uint8_t>(v);
  p0 = (p0 & ~bit) | ((code & 1U) ? bit : 0U);
  p1 = (p1 & ~bit) | ((code & 2U) ? bit : 0U);
}

Lv LvPlane::get(std::size_t slot) const {
  XH_REQUIRE(slot < 64, "plane slot out of range");
  const std::uint64_t bit = 1ULL << slot;
  const std::uint8_t code = static_cast<std::uint8_t>(((p1 & bit) ? 2 : 0) |
                                                      ((p0 & bit) ? 1 : 0));
  return static_cast<Lv>(code);
}

LvPlane LvPlane::splat(Lv v) {
  const auto code = static_cast<std::uint8_t>(v);
  return LvPlane{(code & 1U) ? kAll : 0U, (code & 2U) ? kAll : 0U};
}

ParallelSim::ParallelSim(const Netlist& nl) : nl_(&nl) {
  XH_REQUIRE(nl.finalized(), "ParallelSim requires a finalized netlist");
  planes_.assign(nl.gate_count(), LvPlane::splat(Lv::kX));
  state_.assign(nl.gate_count(), LvPlane::splat(Lv::kX));
  next_state_.assign(nl.gate_count(), LvPlane::splat(Lv::kX));
}

void ParallelSim::set_input(GateId input, const LvPlane& plane) {
  XH_REQUIRE(nl_->gate(input).type == GateType::kInput,
             "set_input target is not a primary input");
  planes_[input] = plane;
  evaluated_ = false;
}

void ParallelSim::set_state(GateId dff, const LvPlane& plane) {
  XH_REQUIRE(nl_->gate(dff).type == GateType::kDff,
             "set_state target is not a DFF");
  state_[dff] = plane;
  evaluated_ = false;
}

void ParallelSim::set_all_state(Lv v) {
  for (const GateId dff : nl_->dffs()) state_[dff] = LvPlane::splat(v);
  evaluated_ = false;
}

void ParallelSim::inject(std::optional<Fault> fault) {
  if (fault) {
    XH_REQUIRE(fault->gate < nl_->gate_count(), "fault gate out of range");
    XH_REQUIRE(is_definite(fault->value), "stuck-at value must be 0 or 1");
  }
  fault_ = fault;
  evaluated_ = false;
}

void ParallelSim::evaluate() {
  for (const GateId id : nl_->topo_order()) {
    const Gate& g = nl_->gate(id);
    const auto in = [&](std::size_t k) -> const LvPlane& {
      return planes_[g.fanin[k]];
    };
    LvPlane out;
    switch (g.type) {
      case GateType::kInput:
        out = planes_[id];
        break;
      case GateType::kDff:
        out = state_[id];
        break;
      case GateType::kConst0:
        out = LvPlane::splat(Lv::k0);
        break;
      case GateType::kConst1:
        out = LvPlane::splat(Lv::k1);
        break;
      case GateType::kBuf:
        out = make(def1(in(0)), unk(in(0)));
        break;
      case GateType::kNot:
        out = make(def0(in(0)), unk(in(0)));
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        std::uint64_t all1 = kAll;
        std::uint64_t any0 = 0;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) {
          all1 &= def1(in(k));
          any0 |= def0(in(k));
        }
        const std::uint64_t xs = ~all1 & ~any0;
        out = (g.type == GateType::kAnd) ? make(all1, xs) : make(any0, xs);
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        std::uint64_t any1 = 0;
        std::uint64_t all0 = kAll;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) {
          any1 |= def1(in(k));
          all0 &= def0(in(k));
        }
        const std::uint64_t xs = ~any1 & ~all0;
        out = (g.type == GateType::kOr) ? make(any1, xs) : make(all0, xs);
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        std::uint64_t parity = 0;
        std::uint64_t anyx = 0;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) {
          parity ^= def1(in(k));
          anyx |= unk(in(k));
        }
        if (g.type == GateType::kXnor) parity = ~parity;
        out = make(parity & ~anyx, anyx);
        break;
      }
      case GateType::kMux: {
        const LvPlane& s = in(0);
        const LvPlane& a = in(1);
        const LvPlane& b = in(2);
        const std::uint64_t out1 = (def0(s) & def1(a)) | (def1(s) & def1(b)) |
                                   (unk(s) & def1(a) & def1(b));
        const std::uint64_t out0 = (def0(s) & def0(a)) | (def1(s) & def0(b)) |
                                   (unk(s) & def0(a) & def0(b));
        out = make(out1, ~(out1 | out0));
        break;
      }
      case GateType::kTristate: {
        const LvPlane& en = in(0);
        const LvPlane& d = in(1);
        out.p0 = def0(en) | (def1(en) & def1(d));
        out.p1 = def0(en) | unk(en) | (def1(en) & unk(d));
        break;
      }
      case GateType::kBus: {
        std::uint64_t has0 = 0;
        std::uint64_t has1 = 0;
        std::uint64_t hasx = 0;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) {
          has0 |= def0(in(k));
          has1 |= def1(in(k));
          hasx |= x_lanes(in(k));
        }
        const std::uint64_t out1 = has1 & ~has0 & ~hasx;
        const std::uint64_t out0 = has0 & ~has1 & ~hasx;
        // Everything else — contention, unknown driver, floating — is X.
        out = make(out1, ~(out1 | out0));
        break;
      }
    }
    if (fault_ && fault_->gate == id) {
      const LvPlane forced = LvPlane::splat(fault_->value);
      out.p0 = (out.p0 & ~fault_->lanes) | (forced.p0 & fault_->lanes);
      out.p1 = (out.p1 & ~fault_->lanes) | (forced.p1 & fault_->lanes);
    }
    planes_[id] = out;
  }
  for (const GateId dff : nl_->dffs()) {
    const LvPlane& d = planes_[nl_->gate(dff).fanin[0]];
    next_state_[dff] = make(def1(d), unk(d));  // Z absorbed at the D pin
  }
  evaluated_ = true;
}

const LvPlane& ParallelSim::plane(GateId id) const {
  XH_REQUIRE(evaluated_, "call evaluate() before reading planes");
  XH_REQUIRE(id < nl_->gate_count(), "gate id out of range");
  return planes_[id];
}

Lv ParallelSim::value(GateId id, std::size_t slot) const {
  return plane(id).get(slot);
}

const LvPlane& ParallelSim::next_state_plane(GateId dff) const {
  XH_REQUIRE(evaluated_, "call evaluate() before reading next state");
  XH_REQUIRE(nl_->gate(dff).type == GateType::kDff, "not a DFF");
  return next_state_[dff];
}

void ParallelSim::clock() {
  XH_REQUIRE(evaluated_, "call evaluate() before clock()");
  for (const GateId dff : nl_->dffs()) state_[dff] = next_state_[dff];
  evaluated_ = false;
}

}  // namespace xh
