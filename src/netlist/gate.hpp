// Gate-level primitives for the structural netlist IR.
#pragma once

#include <cstdint>
#include <string_view>

namespace xh {

/// Structural gate kinds.
///
/// kTristate models an enable-gated driver (output Z when disabled); kBus
/// resolves multiple tristate drivers and yields X on contention or when all
/// drivers float — the two classic silicon X-sources the paper cites.
/// kDff is an edge-triggered state element; whether it is scanned (and thus
/// deterministic) or unscanned (an X-source at capture) is a property of the
/// gate, not the type.
enum class GateType : std::uint8_t {
  kInput,     // primary input (no fanin)
  kConst0,    // constant 0
  kConst1,    // constant 1
  kBuf,       // 1 fanin
  kNot,       // 1 fanin
  kAnd,       // >= 2 fanin
  kNand,      // >= 2 fanin
  kOr,        // >= 2 fanin
  kNor,       // >= 2 fanin
  kXor,       // >= 2 fanin
  kXnor,      // >= 2 fanin
  kMux,       // 3 fanin: select, in0, in1
  kTristate,  // 2 fanin: enable, data
  kBus,       // >= 1 fanin, all kTristate drivers
  kDff,       // 1 fanin: D
};

/// Canonical lower-case mnemonic, e.g. "nand".
std::string_view gate_type_name(GateType type);

/// True for types whose output depends only on current-cycle inputs.
constexpr bool is_combinational(GateType type) {
  return type != GateType::kDff && type != GateType::kInput;
}

/// Fanin arity contract: returns minimum fanin count for the type.
constexpr std::size_t min_fanin(GateType type) {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
    case GateType::kBus:
      return 1;
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
    case GateType::kTristate:
      return 2;
    case GateType::kMux:
      return 3;
  }
  return 0;
}

/// Fanin arity contract: true when more than min_fanin inputs are allowed.
constexpr bool variadic_fanin(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
    case GateType::kBus:
      return true;
    default:
      return false;
  }
}

}  // namespace xh
