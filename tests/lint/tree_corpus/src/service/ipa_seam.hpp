// Shared seam types for the interprocedural fixtures: a thread pool with
// a post/drain surface, a cancel token, and a few leaf helpers that the
// posted callables invoke. Deliberately declaration-only where possible —
// the XH-IPA/XH-RACE rules must work from resolved definitions, not from
// what a header promises.
#pragma once

namespace fixture {

struct CancelToken {
  bool stop_requested() const;
};

class WorkPool {
 public:
  template <typename Fn>
  void post(Fn fn);
  void drain();
};

void sleep_ns(long ns);
void consume(int v);
void counter_bump();

}  // namespace fixture
