// corpus: allow-file() suppresses a rule for the whole file.
// xh-lint: allow-file(XH-DET-001)
#include <cstdlib>

int noise_a() { return std::rand(); }
int noise_b() { return std::rand(); }
