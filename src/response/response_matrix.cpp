#include "response/response_matrix.hpp"

namespace xh {

ResponseMatrix::ResponseMatrix(ScanGeometry geometry, std::size_t num_patterns)
    : geometry_(geometry),
      num_patterns_(num_patterns),
      value_(num_patterns, BitVec(geometry.num_cells())),
      x_(num_patterns, BitVec(geometry.num_cells())) {
  XH_REQUIRE(geometry.num_cells() > 0, "geometry must have cells");
  XH_REQUIRE(num_patterns > 0, "need at least one pattern");
}

Lv ResponseMatrix::get(std::size_t pattern, std::size_t cell) const {
  XH_REQUIRE(pattern < num_patterns_, "pattern index out of range");
  if (x_[pattern].get(cell)) return Lv::kX;
  return value_[pattern].get(cell) ? Lv::k1 : Lv::k0;
}

void ResponseMatrix::set(std::size_t pattern, std::size_t cell, Lv value) {
  XH_REQUIRE(pattern < num_patterns_, "pattern index out of range");
  XH_REQUIRE(value != Lv::kZ, "scan cells cannot capture Z");
  if (value == Lv::kX) {
    x_[pattern].set(cell);
    value_[pattern].clear(cell);
  } else {
    x_[pattern].clear(cell);
    value_[pattern].set(cell, value == Lv::k1);
  }
}

bool ResponseMatrix::is_x(std::size_t pattern, std::size_t cell) const {
  XH_REQUIRE(pattern < num_patterns_, "pattern index out of range");
  return x_[pattern].get(cell);
}

std::size_t ResponseMatrix::total_x() const {
  std::size_t total = 0;
  for (const auto& row : x_) total += row.count();
  return total;
}

std::size_t ResponseMatrix::pattern_x_count(std::size_t pattern) const {
  XH_REQUIRE(pattern < num_patterns_, "pattern index out of range");
  return x_[pattern].count();
}

double ResponseMatrix::x_density() const {
  return static_cast<double>(total_x()) /
         (static_cast<double>(num_patterns_) *
          static_cast<double>(num_cells()));
}

BitVec ResponseMatrix::x_row(std::size_t pattern) const {
  XH_REQUIRE(pattern < num_patterns_, "pattern index out of range");
  return x_[pattern];
}

BitVec ResponseMatrix::value_row(std::size_t pattern) const {
  XH_REQUIRE(pattern < num_patterns_, "pattern index out of range");
  return value_[pattern];
}

ResponseMatrix ResponseMatrix::from_strings(
    ScanGeometry geometry, const std::vector<std::string>& rows) {
  XH_REQUIRE(!rows.empty(), "need at least one pattern row");
  ResponseMatrix m(geometry, rows.size());
  for (std::size_t p = 0; p < rows.size(); ++p) {
    XH_REQUIRE(rows[p].size() == geometry.num_cells(),
               "row length must equal cell count");
    for (std::size_t c = 0; c < rows[p].size(); ++c) {
      m.set(p, c, lv_from_char(rows[p][c]));
    }
  }
  return m;
}

std::string ResponseMatrix::row_string(std::size_t pattern) const {
  std::string out;
  out.reserve(num_cells());
  for (std::size_t c = 0; c < num_cells(); ++c) {
    out.push_back(to_char(get(pattern, c)));
  }
  return out;
}

}  // namespace xh
