#include "gf2/matrix.hpp"

#include "util/check.hpp"

namespace xh {

Gf2Matrix::Gf2Matrix(std::size_t rows, std::size_t cols)
    : cols_(cols), rows_(rows, BitVec(cols)) {}

Gf2Matrix::Gf2Matrix(std::vector<BitVec> rows) : rows_(std::move(rows)) {
  if (!rows_.empty()) {
    cols_ = rows_.front().size();
    for (const auto& r : rows_) {
      XH_REQUIRE(r.size() == cols_, "all matrix rows must share one width");
    }
  }
}

const BitVec& Gf2Matrix::row(std::size_t r) const {
  XH_REQUIRE(r < rows_.size(), "row index out of range");
  return rows_[r];
}

BitVec& Gf2Matrix::row(std::size_t r) {
  XH_REQUIRE(r < rows_.size(), "row index out of range");
  return rows_[r];
}

bool Gf2Matrix::get(std::size_t r, std::size_t c) const {
  return row(r).get(c);
}

void Gf2Matrix::set(std::size_t r, std::size_t c, bool value) {
  row(r).set(c, value);
}

void Gf2Matrix::append_row(BitVec new_row) {
  if (rows_.empty() && cols_ == 0) {
    cols_ = new_row.size();
  }
  XH_REQUIRE(new_row.size() == cols_, "appended row width mismatch");
  rows_.push_back(std::move(new_row));
}

Gf2Matrix Gf2Matrix::from_strings(const std::vector<std::string>& rows) {
  std::vector<BitVec> parsed;
  parsed.reserve(rows.size());
  for (const auto& s : rows) parsed.push_back(BitVec::from_string(s));
  return Gf2Matrix(std::move(parsed));
}

std::size_t Gf2Matrix::rank() const { return eliminate(*this).rank; }

std::string Gf2Matrix::to_string() const {
  std::string out;
  for (const auto& r : rows_) {
    out += r.to_string();
    out.push_back('\n');
  }
  return out;
}

std::vector<std::size_t> Elimination::null_rows() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < reduced.rows(); ++i) {
    if (reduced.row(i).none()) out.push_back(i);
  }
  return out;
}

Elimination eliminate(const Gf2Matrix& m) {
  Elimination result;
  result.reduced = m;
  result.combination.reserve(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    BitVec id(m.rows());
    id.set(r);
    result.combination.push_back(std::move(id));
  }

  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < m.cols() && pivot_row < m.rows(); ++col) {
    // Find a row at or below pivot_row with a 1 in this column.
    std::size_t sel = pivot_row;
    while (sel < m.rows() && !result.reduced.get(sel, col)) ++sel;
    if (sel == m.rows()) continue;

    std::swap(result.reduced.row(pivot_row), result.reduced.row(sel));
    std::swap(result.combination[pivot_row], result.combination[sel]);

    // Eliminate this column from every other row (full reduction keeps the
    // surviving rows canonical, which simplifies downstream reasoning).
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r != pivot_row && result.reduced.get(r, col)) {
        result.reduced.row(r) ^= result.reduced.row(pivot_row);
        result.combination[r] ^= result.combination[pivot_row];
      }
    }
    ++pivot_row;
  }
  result.rank = pivot_row;
  return result;
}

std::vector<BitVec> x_free_combinations(const Gf2Matrix& m) {
  const Elimination e = eliminate(m);
  std::vector<BitVec> combos;
  for (const std::size_t r : e.null_rows()) {
    combos.push_back(e.combination[r]);
  }
  return combos;
}

std::optional<BitVec> solve(const Gf2Matrix& m, const BitVec& b) {
  XH_REQUIRE(b.size() == m.rows(), "right-hand side height mismatch");
  // Eliminate the augmented system [A | b] without materializing it: the
  // tracked combinations tell us how b transforms alongside each row.
  const Elimination e = eliminate(m);
  BitVec x(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    // Transformed rhs bit for this reduced row.
    bool rhs = false;
    for (const std::size_t orig : e.combination[r].set_bits()) {
      rhs ^= b.get(orig);
    }
    const std::size_t pivot = e.reduced.row(r).find_first();
    if (pivot == m.cols()) {
      if (rhs) return std::nullopt;  // 0 = 1: inconsistent
      continue;
    }
    // Rows are fully reduced, so each pivot column appears in exactly one
    // row; setting x[pivot] = rhs (free variables stay 0) satisfies it as
    // long as the row's non-pivot columns are free (they are: full
    // reduction leaves non-pivot columns only in rows whose pivots precede
    // them, and those contributions are fixed by the zero assignment).
    if (rhs) {
      // Account for non-pivot columns already assigned: with free vars at 0
      // and pivots assigned row-by-row in increasing pivot order, no pivot
      // column appears in another reduced row, so the assignment is direct.
      x.set(pivot);
    }
  }
  // Verify (cheap, and guards the subtle free-variable reasoning above).
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (((m.row(r) & x).count() % 2 != 0) != b.get(r)) {
      return std::nullopt;
    }
  }
  return x;
}

}  // namespace xh
