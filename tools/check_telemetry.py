#!/usr/bin/env python3
"""CI gate for xh-telemetry/1 documents (stdlib only; see README "Telemetry").

    check_telemetry.py ACTUAL [BASELINE]

Validates that ACTUAL is a well-formed xh-telemetry/1 document. With a
BASELINE, additionally diffs the deterministic sections — "counters" and
"histograms", which are pure functions of the workload — and fails on any
divergence. "gauges" and "timers" carry wall-clock measurements and are
never diffed; "run" metadata (seed, thread count) is informational.

Counters listed in BACKEND_SHAPED are deterministic for a fixed storage
backend but legitimately differ across backends (store.pages_touched is 0
for in-memory stores and positive for the mmap store), so the same
baseline can gate every --xm-backend CI leg; they are excluded from the
counters diff on both sides.

Exit codes: 0 ok, 1 schema or baseline violation, 2 usage error.
"""
import json
import sys

SCHEMA = "xh-telemetry/1"
REQUIRED = ("schema", "tool", "run", "counters", "gauges", "histograms")
BACKEND_SHAPED = frozenset({"store.pages_touched"})


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def validate(doc, path):
    for key in REQUIRED:
        if key not in doc:
            fail(f"{path}: missing required section '{key}'")
    if doc["schema"] != SCHEMA:
        fail(f"{path}: schema is {doc['schema']!r}, expected {SCHEMA!r}")
    if not isinstance(doc["tool"], str) or not doc["tool"]:
        fail(f"{path}: 'tool' must be a non-empty string")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name} must be a non-negative integer")
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(f"{path}: gauge {name} must be a number")
    for name, hist in doc["histograms"].items():
        for field in ("count", "sum", "min", "max", "buckets"):
            if field not in hist:
                fail(f"{path}: histogram {name} missing '{field}'")
        if sum(c for _, c in hist["buckets"]) != hist["count"]:
            fail(f"{path}: histogram {name} bucket counts do not sum "
                 f"to count={hist['count']}")


def diff_section(section, actual, baseline):
    problems = []
    for name in sorted(set(actual) | set(baseline)):
        if section == "counters" and name in BACKEND_SHAPED:
            continue
        if name not in actual:
            problems.append(f"  {section}.{name}: missing (baseline has "
                            f"{baseline[name]})")
        elif name not in baseline:
            problems.append(f"  {section}.{name}: new (not in baseline); "
                            f"regenerate the baseline if intentional")
        elif actual[name] != baseline[name]:
            problems.append(f"  {section}.{name}: {baseline[name]} -> "
                            f"{actual[name]}")
    return problems


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    actual = load(argv[1])
    validate(actual, argv[1])
    if len(argv) == 3:
        baseline = load(argv[2])
        validate(baseline, argv[2])
        if actual["tool"] != baseline["tool"]:
            fail(f"tool mismatch: {actual['tool']!r} vs {baseline['tool']!r}")
        problems = diff_section("counters", actual["counters"],
                                baseline["counters"])
        problems += diff_section("histograms", actual["histograms"],
                                 baseline["histograms"])
        if problems:
            fail("deterministic sections diverged from baseline:\n" +
                 "\n".join(problems))
    print(f"check_telemetry: OK: {argv[1]} ({actual['tool']}, "
          f"{len(actual['counters'])} counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
