// corpus: banned names inside comments and string literals must not fire.
// This comment mentions rand() and time() and std::random_device freely.
#include <string>

std::string help() {
  return "do not call rand() or time(nullptr); throw is also mentioned";
}
