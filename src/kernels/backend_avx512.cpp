// AVX-512 kernel backend: 512-bit tiles with the native per-qword popcount
// (VPOPCNTDQ). Requires avx512f + avx512vpopcntdq; the dispatcher in
// kernels.cpp checks both through __builtin_cpu_supports before this table
// is ever selectable, and every body carries the matching target attribute
// so the file builds without global -m flags (see backend_avx2.cpp).
//
// Bit-identity with backend_scalar.hpp holds for the same reason as the
// AVX2 tiling: AND/ANDN/XOR/popcount are exact, the accumulator lanes are
// 64-bit, and the sub-tile tail is the scalar loop itself.
#include "kernels/backend_simd.hpp"

#if XH_KERNELS_HAVE_X86

#include <immintrin.h>

#include "kernels/backend_scalar.hpp"

#define XH_AVX512_TARGET __attribute__((target("avx512f,avx512vpopcntdq")))

namespace xh::kernels::avx512 {
namespace {

constexpr std::size_t kLaneWords = 8;  // 512 bits

XH_AVX512_TARGET inline __m512i load(const std::uint64_t* p) {
  return _mm512_loadu_si512(p);
}

// _mm512_reduce_add_epi64 expands through _mm512_undefined_epi32, whose
// deliberate self-initialization trips -Werror=uninitialized when inlined
// under GCC 12; an explicit store-and-sum sidesteps the header noise.
XH_AVX512_TARGET inline std::uint64_t horizontal_sum(__m512i acc) {
  std::uint64_t lanes[kLaneWords];
  _mm512_storeu_si512(lanes, acc);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kLaneWords; ++i) total += lanes[i];
  return total;
}

}  // namespace

XH_AVX512_TARGET std::size_t popcount_words(const std::uint64_t* w,
                                            std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(load(w + i)));
  }
  return static_cast<std::size_t>(horizontal_sum(acc)) +
         scalar::popcount_words(w + i, n - i);
}

XH_AVX512_TARGET std::size_t and_count_words(const std::uint64_t* a,
                                             const std::uint64_t* b,
                                             std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m512i fused = _mm512_and_si512(load(a + i), load(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(fused));
  }
  return static_cast<std::size_t>(horizontal_sum(acc)) +
         scalar::and_count_words(a + i, b + i, n - i);
}

XH_AVX512_TARGET std::size_t and_not_count_words(const std::uint64_t* a,
                                                 const std::uint64_t* b,
                                                 std::size_t n) {
  // _mm512_andnot_si512 shares the -Wmaybe-uninitialized header noise that
  // horizontal_sum documents, so spell ~b as b ^ ones instead.
  const __m512i ones = _mm512_set1_epi64(-1);
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m512i fused =
        _mm512_and_si512(load(a + i), _mm512_xor_si512(load(b + i), ones));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(fused));
  }
  return static_cast<std::size_t>(horizontal_sum(acc)) +
         scalar::and_not_count_words(a + i, b + i, n - i);
}

XH_AVX512_TARGET void xor_words(std::uint64_t* dst, const std::uint64_t* src,
                                std::size_t n) {
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(load(dst + i),
                                                  load(src + i)));
  }
  scalar::xor_words(dst + i, src + i, n - i);
}

XH_AVX512_TARGET void and_words_into(std::uint64_t* dst,
                                     const std::uint64_t* a,
                                     const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    _mm512_storeu_si512(dst + i, _mm512_and_si512(load(a + i), load(b + i)));
  }
  scalar::and_words_into(dst + i, a + i, b + i, n - i);
}

}  // namespace xh::kernels::avx512

#endif  // XH_KERNELS_HAVE_X86
