// SCOAP testability measures (Goldstein's controllability/observability).
//
// CC0/CC1(net): minimum "effort" (roughly, number of input assignments) to
// drive the net to 0/1. CO(net): effort to propagate the net's value to an
// observation point. Computed once per netlist; PODEM uses them to steer
// backtrace toward cheap inputs and the D-frontier toward observable paths,
// which substantially reduces backtracking on reconvergent logic.
//
// Conventions for this library's observation model: controllable points are
// primary inputs and scanned flops (cost 1); unscanned flops are
// uncontrollable (∞); observation points are scanned-flop D inputs (cost 0);
// primary outputs are NOT observed (MISR flows observe scan-out only).
// Tri-state/bus formulas are the usual optimistic approximations.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace xh {

/// Saturating "infinite" effort for uncontrollable/unobservable nets.
inline constexpr std::uint32_t kScoapInf = 1u << 30;

struct Testability {
  std::vector<std::uint32_t> cc0;  // per gate id
  std::vector<std::uint32_t> cc1;
  std::vector<std::uint32_t> co;

  std::uint32_t cc(GateId id, bool value) const {
    return value ? cc1[id] : cc0[id];
  }
};

Testability compute_scoap(const Netlist& nl);

}  // namespace xh
