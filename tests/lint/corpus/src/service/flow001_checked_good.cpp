// XH-FLOW-001 non-firing fixtures: a status read inside a loop body counts
// as read (no zero-trip-path false positive), a bare declaration is the
// out-param collector pattern rather than a discarded value, and pointer
// bindings alias a value someone else owns.
#include <cstddef>

namespace xh {

struct LoadStatus {
  bool ok = false;
};

struct Diagnostics {
  std::size_t errors = 0;
};

LoadStatus load_primary();
void fill(Diagnostics* diags);

std::size_t count_healthy(std::size_t n) {
  std::size_t healthy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const LoadStatus st = load_primary();
    if (st.ok) ++healthy;
  }
  return healthy;
}

std::size_t collect() {
  Diagnostics diags;
  fill(&diags);
  Diagnostics* alias = &diags;
  return alias->errors;
}

}  // namespace xh
