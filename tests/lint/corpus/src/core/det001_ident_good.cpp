// corpus: identifiers that merely *contain* banned names must not fire —
// `normalized_test_time(` is the real-world regression (misr/accounting).
double normalized_test_time(int chains, double density);
int randomize_order_label();  // declaration, no call

double use() { return normalized_test_time(8, 0.01) + 1.0; }
