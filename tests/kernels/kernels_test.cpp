// Differential suite for the dispatched kernel layer: every backend the
// running CPU can execute must be bit-identical to the constexpr scalar
// reference (backend_scalar.hpp / gf2_ref::*) on randomized inputs,
// including the tail-mask and odd-span edges, and the M4RM elimination must
// reproduce naive tracked Gauss-Jordan exactly — same reduced rows, same
// combination vectors, same rank — on rank-deficient matrices too.
//
// CI runs this under ASan/UBSan (the sanitizer test legs build the whole
// tree), which doubles as an out-of-bounds probe on the SIMD tilings.
#include "kernels/kernels.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "gf2/matrix.hpp"
#include "kernels/backend_scalar.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

std::vector<kernels::Isa> supported_isas() {
  std::vector<kernels::Isa> isas;
  for (const kernels::Isa isa :
       {kernels::Isa::kScalar, kernels::Isa::kAvx2, kernels::Isa::kAvx512}) {
    if (kernels::isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

std::uint64_t random_word(Rng& rng) {
  std::uint64_t w = 0;
  for (int chunk = 0; chunk < 4; ++chunk) {
    w = (w << 16) | rng.below(1u << 16);
  }
  return w;
}

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) {
    // Mix extreme and generic words so carry paths and all-ones lanes in
    // the SIMD popcount see coverage.
    const std::uint64_t pick = rng.below(8);
    w = pick == 0 ? 0ULL : pick == 1 ? ~0ULL : random_word(rng);
  }
  return words;
}

// ---- Word-span backends vs the scalar reference ---------------------------

TEST(KernelsDifferential, CountKernelsMatchScalarOnEverySpanSize) {
  Rng rng(2024);
  for (const kernels::Isa isa : supported_isas()) {
    SCOPED_TRACE(kernels::isa_name(isa));
    const kernels::Kernels& k = kernels::table_for(isa);
    // Sizes straddle the AVX2 (4-word) and AVX-512 (8-word) tile widths.
    for (const std::size_t n :
         {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 11u, 15u, 16u, 17u, 31u, 32u,
          33u, 63u, 64u, 65u, 100u}) {
      const auto a = random_words(rng, n);
      const auto b = random_words(rng, n);
      EXPECT_EQ(k.popcount_words(a.data(), n),
                kernels::scalar::popcount_words(a.data(), n));
      EXPECT_EQ(k.and_count_words(a.data(), b.data(), n),
                kernels::scalar::and_count_words(a.data(), b.data(), n));
      EXPECT_EQ(k.and_not_count_words(a.data(), b.data(), n),
                kernels::scalar::and_not_count_words(a.data(), b.data(), n));
    }
  }
}

TEST(KernelsDifferential, MutatingKernelsMatchScalarOnEverySpanSize) {
  Rng rng(77);
  for (const kernels::Isa isa : supported_isas()) {
    SCOPED_TRACE(kernels::isa_name(isa));
    const kernels::Kernels& k = kernels::table_for(isa);
    for (const std::size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 9u, 17u, 33u, 90u}) {
      const auto a = random_words(rng, n);
      const auto b = random_words(rng, n);

      auto got = a;
      auto want = a;
      k.xor_words(got.data(), b.data(), n);
      kernels::scalar::xor_words(want.data(), b.data(), n);
      EXPECT_EQ(got, want);

      std::vector<std::uint64_t> got_and(n, 0xfeedULL);
      std::vector<std::uint64_t> want_and(n, 0xfeedULL);
      k.and_words_into(got_and.data(), a.data(), b.data(), n);
      kernels::scalar::and_words_into(want_and.data(), a.data(), b.data(), n);
      EXPECT_EQ(got_and, want_and);

      // Aliased form (dst == a), the shape BitVec::operator&= uses.
      auto got_alias = a;
      auto want_alias = a;
      k.and_words_into(got_alias.data(), got_alias.data(), b.data(), n);
      kernels::scalar::and_words_into(want_alias.data(), want_alias.data(),
                                      b.data(), n);
      EXPECT_EQ(got_alias, want_alias);
    }
  }
}

// ---- BitVec wrappers ------------------------------------------------------

TEST(KernelsBitVec, WrappersMatchNaiveFormulationUnderEveryIsa) {
  Rng rng(555);
  const kernels::Isa entry = kernels::active().isa;
  for (const kernels::Isa isa : supported_isas()) {
    SCOPED_TRACE(kernels::isa_name(isa));
    ASSERT_TRUE(kernels::select(isa));
    for (int iter = 0; iter < 30; ++iter) {
      const std::size_t n = 1 + rng.below(300);
      BitVec a(n);
      BitVec b(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.chance(0.4)) a.set(i);
        if (rng.chance(0.4)) b.set(i);
      }
      EXPECT_EQ(kernels::and_count(a, b), (a & b).count());
      BitVec diff = a;
      diff.and_not(b);
      EXPECT_EQ(kernels::and_not_count(a, b), diff.count());
      EXPECT_EQ(kernels::popcount(a), a.count());

      BitVec x = a;
      kernels::xor_into(x, b);
      EXPECT_TRUE(x == (a ^ b));

      BitVec meet;
      kernels::and_into(meet, a, b);
      EXPECT_TRUE(meet == (a & b));
    }
  }
  ASSERT_TRUE(kernels::select(entry));
}

TEST(KernelsBitVec, WrappersRejectMismatchedSizes) {
  EXPECT_THROW(kernels::and_count(BitVec(4), BitVec(5)),
               std::invalid_argument);
  EXPECT_THROW(kernels::and_not_count(BitVec(4), BitVec(5)),
               std::invalid_argument);
  BitVec dst(4);
  EXPECT_THROW(kernels::xor_into(dst, BitVec(5)), std::invalid_argument);
  EXPECT_THROW(kernels::and_into(dst, BitVec(4), BitVec(5)),
               std::invalid_argument);
}

// Constant evaluation must run the scalar reference — the property that
// keeps the static_assert proofs in tests/static/ attached to the new API.
constexpr bool wrappers_work_in_constant_evaluation() {
  const BitVec a = BitVec::from_string("1011011");
  const BitVec b = BitVec::from_string("1101001");
  if (kernels::and_count(a, b) != 3) return false;
  if (kernels::and_not_count(a, b) != 2) return false;
  if (kernels::popcount(a) != 5) return false;
  BitVec x = a;
  kernels::xor_into(x, b);
  if (x != (a ^ b)) return false;
  const Gf2Matrix m = Gf2Matrix::from_strings({"110", "011", "101"});
  if (kernels::eliminate(m).rank != 2) return false;
  if (kernels::x_free_combinations(m).size() != 1) return false;
  return kernels::solve(m, BitVec(3)).has_value();
}
static_assert(wrappers_work_in_constant_evaluation(),
              "kernels wrappers must run the scalar reference when constant-"
              "evaluated");

// ---- Dispatch plumbing ----------------------------------------------------

TEST(KernelsDispatch, ParseAndNameRoundTrip) {
  for (const kernels::Isa isa :
       {kernels::Isa::kAuto, kernels::Isa::kScalar, kernels::Isa::kAvx2,
        kernels::Isa::kAvx512}) {
    kernels::Isa parsed = kernels::Isa::kAuto;
    ASSERT_TRUE(kernels::parse_isa(kernels::isa_name(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  kernels::Isa parsed = kernels::Isa::kAvx2;
  EXPECT_FALSE(kernels::parse_isa("sse9", &parsed));
  EXPECT_EQ(parsed, kernels::Isa::kAvx2);  // untouched on failure
}

TEST(KernelsDispatch, SelectInstallsSupportedTables) {
  const kernels::Isa entry = kernels::active().isa;
  for (const kernels::Isa isa : supported_isas()) {
    ASSERT_TRUE(kernels::select(isa));
    EXPECT_EQ(kernels::active().isa, isa);
    EXPECT_STREQ(kernels::active().name, kernels::isa_name(isa));
  }
  // kAuto resolves to the best supported tier.
  ASSERT_TRUE(kernels::select(kernels::Isa::kAuto));
  EXPECT_EQ(kernels::active().isa, kernels::detect_best());
  ASSERT_TRUE(kernels::select(entry));
}

TEST(KernelsDispatch, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(kernels::isa_supported(kernels::Isa::kScalar));
  EXPECT_TRUE(kernels::isa_supported(kernels::Isa::kAuto));
  EXPECT_TRUE(kernels::isa_supported(kernels::detect_best()));
}

// ---- GF(2) elimination ----------------------------------------------------

Gf2Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  Gf2Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    // Rank deficiency on purpose: duplicate or zero rows are common.
    if (r > 0 && rng.chance(0.2)) {
      m.row(r) = m.row(rng.below(static_cast<std::uint32_t>(r)));
      continue;
    }
    if (rng.chance(0.1)) continue;  // zero row
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.chance(0.3)) m.set(r, c);
    }
  }
  return m;
}

void expect_elimination_equal(const Elimination& got,
                              const Elimination& want) {
  EXPECT_EQ(got.rank, want.rank);
  EXPECT_TRUE(got.reduced == want.reduced);
  ASSERT_EQ(got.combination.size(), want.combination.size());
  for (std::size_t i = 0; i < got.combination.size(); ++i) {
    EXPECT_TRUE(got.combination[i] == want.combination[i]) << "row " << i;
  }
}

TEST(KernelsGf2, EliminationBitIdenticalAcrossPolicyAndIsa) {
  Rng rng(4242);
  const kernels::Isa entry = kernels::active().isa;
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t rows = 1 + rng.below(40);
    const std::size_t cols = 1 + rng.below(70);
    const Gf2Matrix m = random_matrix(rng, rows, cols);
    const Elimination want = gf2_ref::eliminate_reference(m);
    for (const kernels::Isa isa : supported_isas()) {
      SCOPED_TRACE(kernels::isa_name(isa));
      ASSERT_TRUE(kernels::select(isa));
      for (const kernels::Gf2Policy policy :
           {kernels::Gf2Policy::kNaive, kernels::Gf2Policy::kM4rm}) {
        expect_elimination_equal(kernels::eliminate(m, policy), want);
      }
    }
  }
  ASSERT_TRUE(kernels::select(entry));
}

TEST(KernelsGf2, AutoPolicyEngagesM4rmAboveThreshold) {
  Rng rng(99);
  const Gf2Matrix m =
      random_matrix(rng, kernels::kM4rmAutoMinRows + 12, 180);
  const std::uint64_t tables_before =
      kernels::kernel_stats().m4rm_tables_built;
  const Elimination got = kernels::eliminate(m);  // kAuto
  EXPECT_GT(kernels::kernel_stats().m4rm_tables_built, tables_before);
  expect_elimination_equal(got, gf2_ref::eliminate_reference(m));
}

TEST(KernelsGf2, SolveMatchesReferenceIncludingInconsistent) {
  Rng rng(808);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t rows = 1 + rng.below(30);
    const std::size_t cols = 1 + rng.below(30);
    const Gf2Matrix m = random_matrix(rng, rows, cols);
    BitVec b(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      if (rng.chance(0.5)) b.set(r);
    }
    const auto want = gf2_ref::solve_reference(m, b);
    for (const kernels::Gf2Policy policy :
         {kernels::Gf2Policy::kNaive, kernels::Gf2Policy::kM4rm}) {
      const auto got = kernels::solve(m, b, policy);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (want.has_value()) {
        EXPECT_TRUE(*got == *want);
      }
    }
  }
}

TEST(KernelsGf2, XFreeCombinationsMatchReference) {
  Rng rng(31337);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t rows = 1 + rng.below(25);
    const std::size_t cols = 1 + rng.below(20);
    const Gf2Matrix m = random_matrix(rng, rows, cols);
    const auto want = gf2_ref::x_free_combinations_reference(m);
    for (const kernels::Gf2Policy policy :
         {kernels::Gf2Policy::kNaive, kernels::Gf2Policy::kM4rm}) {
      const auto got = kernels::x_free_combinations(m, policy);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i] == want[i]);
      }
    }
  }
}

TEST(KernelsGf2, DegenerateShapes) {
  for (const kernels::Gf2Policy policy :
       {kernels::Gf2Policy::kNaive, kernels::Gf2Policy::kM4rm}) {
    const Gf2Matrix empty;
    expect_elimination_equal(kernels::eliminate(empty, policy),
                             gf2_ref::eliminate_reference(empty));
    const Gf2Matrix wide(0, 5);
    expect_elimination_equal(kernels::eliminate(wide, policy),
                             gf2_ref::eliminate_reference(wide));
    const Gf2Matrix tall(4, 0);
    expect_elimination_equal(kernels::eliminate(tall, policy),
                             gf2_ref::eliminate_reference(tall));
  }
}

TEST(KernelsGf2, SolveRejectsMismatchedRhs) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"10", "01"});
  EXPECT_THROW(kernels::solve(m, BitVec(3)), std::invalid_argument);
}

}  // namespace
}  // namespace xh
