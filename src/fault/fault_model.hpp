// Single stuck-at fault model.
//
// Faults are modeled on gate OUTPUTS (stem faults). Structural equivalence
// collapsing folds the classic redundancies — a BUF/NOT output fault is
// equivalent to (the possibly inverted) fault on its single driver when that
// driver has fanout 1 — shrinking the universe fault simulation has to walk.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace xh {

struct StuckFault {
  GateId gate = kNoGate;
  bool stuck_at_one = false;

  bool operator==(const StuckFault&) const = default;
};

std::string fault_name(const Netlist& nl, const StuckFault& fault);

/// Every output stuck-at-0/1 on primary inputs, combinational gates and DFF
/// outputs — 2 × gate_count faults before collapsing.
std::vector<StuckFault> enumerate_faults(const Netlist& nl);

/// Structural equivalence collapsing over BUF/NOT chains: the fault on a
/// BUF/NOT output whose input stem has fanout 1 is dropped (it is equivalent
/// to a fault on the stem). Returns the surviving representative set.
std::vector<StuckFault> collapse_faults(const Netlist& nl,
                                        const std::vector<StuckFault>& all);

}  // namespace xh
