#pragma once

namespace fixture {

struct Outcome {
  bool accepted = false;
};

class Service {
 public:
  [[nodiscard]] Outcome submit_job(int job);
  [[nodiscard]] int poll_job(int id) const;
};

}  // namespace fixture
