// Ablation B — MISR configuration sweep. Section 4 shows the optimal number
// of partitions depends on (m, q): a cheaper canceling stage (small q/(m−q))
// tolerates more leaked X's, so partitioning stops earlier. This bench sweeps
// (m, q) on one workload and reports where the cost function stops and what
// it saves versus X-canceling-only at the same configuration.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/hybrid.hpp"
#include "misr/accounting.hpp"
#include "util/table.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

void print_sweep() {
  const WorkloadProfile profile = scaled_profile(ckt_b_profile(), 0.4);
  const XMatrix xm = generate_workload(profile);

  std::printf("== Ablation B: MISR (m, q) sweep on %s ==\n",
              profile.name.c_str());
  TextTable t({"m", "q", "bits/X (mq/(m-q))", "#partitions", "masked X",
               "cancel-only bits", "proposed bits", "impv."});
  for (const std::size_t m : {std::size_t{16}, std::size_t{32}, std::size_t{64}}) {
    for (const std::size_t q : {std::size_t{1}, m / 8, m / 4, m / 2}) {
      if (q < 1 || q >= m) continue;
      PipelineContext ctx;
      ctx.partitioner.misr = {m, q};
      const HybridReport rep = run_hybrid_analysis(xm, ctx);
      t.add_row({std::to_string(m), std::to_string(q),
                 TextTable::num(static_cast<double>(m * q) /
                                    static_cast<double>(m - q),
                                2),
                 std::to_string(rep.partitioning.num_partitions()),
                 std::to_string(rep.partitioning.masked_x),
                 TextTable::millions(rep.canceling_only_bits),
                 TextTable::millions(rep.proposed_bits),
                 TextTable::num(rep.improvement_over_canceling, 2)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Expected shape: larger q/(m-q) makes each leaked X dearer, so the\n"
      "cost function buys more partitions and the improvement factor grows —\n"
      "the Section 4 (q=2 continues / q=1 stops) effect at scale.\n\n");
}

void BM_HybridAnalysis(benchmark::State& state) {
  const XMatrix xm =
      generate_workload(scaled_profile(ckt_b_profile(), 0.25));
  PipelineContext ctx;
  ctx.partitioner.misr = {static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(1))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_hybrid_analysis(xm, ctx));
  }
}

BENCHMARK(BM_HybridAnalysis)
    ->Args({32, 7})
    ->Args({32, 16})
    ->Args({64, 7})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
