// xh::Trace registry semantics: instrument identity by name, histogram
// bucketing, span path joining, and the null-trace no-op contract every
// instrumented stage relies on.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

namespace xh {
namespace {

TEST(TraceCounters, RegisteredByNameAndMonotonic) {
  Trace t;
  EXPECT_TRUE(t.empty());
  t.counter("a.events").value += 3;
  t.counter("a.events").value += 4;
  t.counter("b.events");  // registered at zero by first touch
  EXPECT_EQ(t.counters().size(), 2u);
  EXPECT_EQ(t.counters().at("a.events").value, 7u);
  EXPECT_EQ(t.counters().at("b.events").value, 0u);
  EXPECT_FALSE(t.empty());
}

TEST(TraceGauges, LastWriteWins) {
  Trace t;
  t.gauge("x.density").value = 0.25;
  t.gauge("x.density").value = 0.5;
  EXPECT_DOUBLE_EQ(t.gauges().at("x.density").value, 0.5);
}

TEST(TraceHistograms, PowerOfTwoBucketing) {
  TraceHistogram h;
  h.record(0);  // bucket 0: zeros
  h.record(1);  // bucket 1: [1, 2)
  h.record(2);  // bucket 2: [2, 4)
  h.record(3);  // bucket 2
  h.record(4);  // bucket 3: [4, 8)
  h.record(7);  // bucket 3
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.sum, 17u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 7u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 2u);
  EXPECT_EQ(TraceHistogram::bucket_lo(0), 0u);
  EXPECT_EQ(TraceHistogram::bucket_lo(1), 1u);
  EXPECT_EQ(TraceHistogram::bucket_lo(3), 4u);
}

TEST(TraceHistograms, TopBucketHoldsMaxUint64) {
  TraceHistogram h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.buckets[TraceHistogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.max, ~std::uint64_t{0});
}

// Span *paths* are registry behavior and hold in both obs modes.
TEST(TraceSpans, EnterExitJoinPathsInRegistry) {
  Trace t;
  t.span_enter("analysis");
  t.span_enter("partition");
  t.span_exit(5);
  t.span_exit(10);
  ASSERT_EQ(t.timers().size(), 2u);
  EXPECT_EQ(t.timers().at("analysis").total_ns, 10u);
  EXPECT_EQ(t.timers().at("analysis/partition").total_ns, 5u);
}

#ifndef XH_OBS_NOOP

TEST(TraceSpans, NestedSpansJoinPaths) {
  Trace t;
  {
    const ScopedSpan outer(&t, "analysis");
    EXPECT_EQ(t.open_spans(), 1u);
    {
      const ScopedSpan inner(&t, "partition");
      EXPECT_EQ(t.open_spans(), 2u);
    }
    EXPECT_EQ(t.open_spans(), 1u);
  }
  EXPECT_EQ(t.open_spans(), 0u);
  ASSERT_EQ(t.timers().size(), 2u);
  EXPECT_EQ(t.timers().count("analysis"), 1u);
  EXPECT_EQ(t.timers().count("analysis/partition"), 1u);
  EXPECT_EQ(t.timers().at("analysis").count, 1u);
}

TEST(TraceSpans, RepeatedSpansFoldIntoOneTimer) {
  Trace t;
  for (int i = 0; i < 3; ++i) {
    const ScopedSpan span(&t, "cancel");
  }
  ASSERT_EQ(t.timers().size(), 1u);
  EXPECT_EQ(t.timers().at("cancel").count, 3u);
}

#endif  // XH_OBS_NOOP

TEST(TraceHelpers, NullTraceIsNoOp) {
  // The core contract: every helper degrades to a branch on nullptr, so an
  // untraced pipeline run pays nothing and touches no state.
  obs_count(nullptr, "a");
  obs_gauge(nullptr, "b", 1.0);
  obs_record(nullptr, "c", 2);
  obs_add(obs_counter(nullptr, "d"), 5);
  const ScopedSpan span(nullptr, "e");
}

#ifndef XH_OBS_NOOP

TEST(TraceHelpers, HelpersFeedTheRegistry) {
  Trace t;
  obs_count(&t, "events");
  obs_count(&t, "events", 4);
  obs_gauge(&t, "ratio", 2.5);
  obs_record(&t, "sizes", 9);
  const TraceCounterHandle handle = obs_counter(&t, "hot");
  obs_add(handle);
  obs_add(handle, 2);
  EXPECT_EQ(t.counters().at("events").value, 5u);
  EXPECT_DOUBLE_EQ(t.gauges().at("ratio").value, 2.5);
  EXPECT_EQ(t.histograms().at("sizes").count, 1u);
  EXPECT_EQ(t.counters().at("hot").value, 3u);
}

#endif  // XH_OBS_NOOP

TEST(TraceRegistry, ClearEmptiesEverything) {
  Trace t;
  t.counter("a").value = 1;
  t.gauge("b").value = 1.0;
  t.histogram("c").record(2);
  t.span_enter("d");
  t.span_exit(3);
  EXPECT_FALSE(t.empty());
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.open_spans(), 0u);
}

}  // namespace
}  // namespace xh
