// Tester payload assembly: the concrete control-data image behind the
// paper's "control bit data volume".
//
// For the hybrid scheme the tester ships, per partition, one mask vector
// (raw L·C bits, or gap-coded — see masking/mask_encoding.hpp), and, per
// MISR stop, q selection vectors of m bits for the selective-XOR readout.
// Patterns are applied partition-by-partition so no per-pattern partition
// tag is needed; the reordering permutation is part of the payload metadata
// (pattern data itself is unchanged, just re-sequenced).
#pragma once

#include <cstddef>
#include <vector>

#include "core/hybrid.hpp"
#include "masking/mask_encoding.hpp"
#include "util/bitvec.hpp"

namespace xh {

struct TesterPayload {
  struct PartitionSection {
    BitVec patterns;     // which patterns run under this mask
    EncodedMask mask;    // gap-coded mask image
    std::size_t raw_mask_bits = 0;  // L·C (what the paper counts)
  };

  std::vector<PartitionSection> partitions;
  /// Application order: patterns grouped by partition.
  std::vector<std::size_t> pattern_order;
  /// One m-bit selection vector per extracted X-free combination.
  std::vector<BitVec> cancel_vectors;

  std::size_t raw_mask_bits = 0;
  std::size_t coded_mask_bits = 0;
  std::size_t cancel_bits = 0;

  /// Paper accounting: raw masks + canceling vectors.
  std::size_t total_bits_raw() const { return raw_mask_bits + cancel_bits; }
  /// With gap-coded masks (extension).
  std::size_t total_bits_coded() const {
    return coded_mask_bits + cancel_bits;
  }
};

/// Assembles the payload from a completed hybrid simulation.
[[nodiscard]] TesterPayload build_tester_payload(const HybridSimulation& sim);

}  // namespace xh
