// Quickstart: the five-minute tour of the xhybrid public API.
//
// 1. Describe your scan geometry and record which (cell, pattern) captures
//    are X (from your own fault-free simulation, or a generator).
// 2. Run the pattern-partitioned hybrid analysis.
// 3. Read the report: partitions, masks, and control-bit / test-time
//    comparisons against X-masking-only [5] and X-canceling-only [12].
#include <cstdio>

#include "core/hybrid.hpp"

int main() {
  using namespace xh;

  // A tiny design: 4 scan chains x 8 cells, 12 test patterns.
  const ScanGeometry geometry{4, 8};
  XMatrix xs(geometry, 12);

  // Three "hot" cells capture X under the same six patterns (strong
  // inter-correlation — e.g. downstream of one uninitialized RAM)...
  for (const std::size_t cell : {3u, 11u, 19u}) {
    for (const std::size_t pattern : {0u, 1u, 2u, 3u, 4u, 5u}) {
      xs.add_x(cell, pattern);
    }
  }
  // ...plus a few uncorrelated stragglers.
  xs.add_x(7, 9);
  xs.add_x(22, 10);
  xs.add_x(30, 2);

  PipelineContext ctx;
  ctx.partitioner.misr = {16, 4};  // 16-bit MISR, 4 X-free combos/stop

  const HybridReport report = run_hybrid_analysis(xs, ctx);

  std::printf("workload: %zu cells x %zu patterns, %llu X's (%.2f%%)\n",
              geometry.num_cells(), report.num_patterns,
              static_cast<unsigned long long>(report.total_x),
              100.0 * report.x_density);
  std::printf("partitions found: %zu\n",
              report.partitioning.num_partitions());
  for (std::size_t i = 0; i < report.partitioning.partitions.size(); ++i) {
    std::printf("  partition %zu: patterns %s  mask %s (%zu cells)\n", i,
                report.partitioning.partitions[i].to_string().c_str(),
                report.partitioning.masks[i].to_string().c_str(),
                report.partitioning.masks[i].count());
  }
  std::printf("X's masked: %llu, leaked to X-canceling MISR: %llu\n",
              static_cast<unsigned long long>(report.partitioning.masked_x),
              static_cast<unsigned long long>(report.partitioning.leaked_x));
  std::printf("\ncontrol bits:\n");
  std::printf("  X-masking only [5]:      %llu\n",
              static_cast<unsigned long long>(report.masking_only_bits));
  std::printf("  X-canceling only [12]:   %.1f\n", report.canceling_only_bits);
  std::printf("  proposed hybrid:         %.1f  (%.2fx better than [12])\n",
              report.proposed_bits, report.improvement_over_canceling);
  std::printf("normalized test time: %.3f -> %.3f (%.2fx)\n",
              report.test_time_canceling_only, report.test_time_proposed,
              report.test_time_improvement);
  return 0;
}
