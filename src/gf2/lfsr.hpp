// Feedback polynomials and stepping for LFSR-structured registers (MISRs).
//
// A MISR is a type-2 (internal-XOR) LFSR whose stage inputs are additionally
// XORed with the parallel input vector each cycle. Primitive feedback
// polynomials guarantee maximal state sequences, which keeps signature
// aliasing probability at ~2^-m.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace xh {

/// A feedback polynomial over GF(2), stored as the set of tap positions.
///
/// Tap t means the polynomial includes x^t; the degree term x^m and the
/// constant term x^0 are implicit members of every valid polynomial.
class FeedbackPolynomial {
 public:
  /// @p degree is the register width m; @p taps are the intermediate
  /// exponents (strictly between 0 and degree).
  FeedbackPolynomial(std::size_t degree, std::vector<std::size_t> taps);

  std::size_t degree() const { return degree_; }
  const std::vector<std::size_t>& taps() const { return taps_; }

  /// A primitive (or at least maximal-period-verified) polynomial for the
  /// requested degree. Supported degrees: 2..64.
  static FeedbackPolynomial primitive(std::size_t degree);

 private:
  std::size_t degree_;
  std::vector<std::size_t> taps_;
};

/// Internal-XOR LFSR state machine used as the base of the MISR.
class Lfsr {
 public:
  explicit Lfsr(FeedbackPolynomial poly);

  std::size_t size() const { return poly_.degree(); }
  const BitVec& state() const { return state_; }
  void set_state(const BitVec& state);
  void reset();

  /// One autonomous clock (no parallel input).
  void step();

  /// One clock with a parallel input vector XORed into every stage (MISR
  /// compaction step). @p input must have size() == size().
  void step(const BitVec& input);

  /// Period of the autonomous sequence from the all-ones state; used by
  /// tests to verify maximality on small degrees. Walks at most @p limit
  /// steps and returns 0 if the state did not recur within it.
  std::uint64_t measure_period(std::uint64_t limit);

 private:
  BitVec next_state(const BitVec& in) const;

  FeedbackPolynomial poly_;
  BitVec state_;
};

}  // namespace xh
