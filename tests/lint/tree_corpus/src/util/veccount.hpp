#pragma once

namespace fixture {

struct WordVec {
  int words = 0;
};

// The live, dispatched spelling of the count primitive.
namespace fast {
int vec_count(const WordVec& v);
}  // namespace fast

}  // namespace fixture
