#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xh {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"circuit", "bits"});
  t.add_row({"CKT-A", "1515.15M"});
  t.add_row({"B", "5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| circuit | bits     |"), std::string::npos);
  EXPECT_NE(out.find("| CKT-A   | 1515.15M |"), std::string::npos);
  EXPECT_NE(out.find("| B       | 5        |"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.render().find("| 1 |   |   |"), std::string::npos);
}

TEST(TextTable, TooManyCellsThrows) {
  TextTable t({"only"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, MillionsFormatting) {
  EXPECT_EQ(TextTable::millions(1515150000.0), "1515.15M");
  EXPECT_EQ(TextTable::millions(5350000.0), "5.35M");
}

}  // namespace
}  // namespace xh
