// Single-gate four-valued evaluation from precomputed fanin values.
// Shared by the scalar simulator and by ATPG's dual-machine implication.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace xh {

/// Output of combinational gate @p id given net values indexed by GateId.
/// Must not be called for kInput/kDff (their values are state, not logic).
Lv evaluate_combinational(const Netlist& nl, GateId id,
                          const std::vector<Lv>& values);

}  // namespace xh
