// Seeds XH-IPA-001 through a member call: the chain `s.rebalance()` must
// resolve to Shard::rebalance's definition and read the *Outcome return
// type from there.
namespace fixture {

struct RebalanceOutcome {
  bool moved = false;
};

struct Shard {
  RebalanceOutcome rebalance();
};

RebalanceOutcome Shard::rebalance() {
  RebalanceOutcome out;
  out.moved = true;
  return out;
}

void maintenance_cycle(Shard& s) {
  s.rebalance();
}

}  // namespace fixture
