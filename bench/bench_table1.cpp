// Regenerates Table 1: control-bit data volume and test-time comparisons for
// CKT-A/B/C — X-masking only [5] vs. X-canceling MISR only [12] vs. the
// proposed pattern-partitioned hybrid — followed by google-benchmark timings
// of the partitioning algorithm itself.
//
// Absolute numbers depend on the (proprietary) X distributions; the workload
// generator reproduces the published geometry, density and correlation
// structure, so the SHAPE of the table is the reproduction target: column 2
// is exact (pure geometry), column 3 is exact given the realized X count, and
// the proposed column must beat both with ratios in the paper's bands
// (≈7–280× over [5], ≈1.2–2.2× over [12]).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/hybrid.hpp"
#include "core/partitioner.hpp"
#include "masking/mask_encoding.hpp"
#include "misr/accounting.hpp"
#include "obs/telemetry_json.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

const MisrConfig kMisr{32, 7};  // the paper's configuration

void print_table1(Trace* trace) {
  TextTable bits({"Circuit (X-density)", "X-Masking Only [5]",
                  "X-Canceling MISR Only [12]", "Proposed Method",
                  "Impv. over [5]", "Impv. over [12]", "#Partitions"});
  TextTable time({"Circuit", "Test Time: X-Canceling Only [12]",
                  "Test Time: Proposed", "Impv. over [12]"});
  TextTable ext({"Circuit", "Raw mask bits (L*C*P)", "Gap-coded mask bits",
                 "Mask compression", "Proposed total w/ coding",
                 "Impv. over [12]"});

  for (const WorkloadProfile& profile :
       {ckt_a_profile(), ckt_b_profile(), ckt_c_profile()}) {
    const XMatrix xm = generate_workload(profile);
    PipelineContext ctx;
    ctx.partitioner.misr = kMisr;
    ctx.set_trace(trace);
    const HybridReport rep = run_hybrid_analysis(xm, ctx);
    bits.add_row({profile.name + " (" +
                      TextTable::num(rep.x_density * 100.0, 2) + "%)",
                  TextTable::millions(static_cast<double>(
                      rep.masking_only_bits)),
                  TextTable::millions(rep.canceling_only_bits),
                  TextTable::millions(rep.proposed_bits),
                  TextTable::num(rep.improvement_over_masking, 2),
                  TextTable::num(rep.improvement_over_canceling, 2),
                  std::to_string(rep.partitioning.num_partitions())});
    time.add_row({profile.name,
                  TextTable::num(rep.test_time_canceling_only, 2),
                  TextTable::num(rep.test_time_proposed, 2),
                  TextTable::num(rep.test_time_improvement, 2)});

    // Extension beyond the paper: gap-code the sparse partition masks
    // instead of shipping L*C raw bits each.
    std::uint64_t coded = 0;
    for (const BitVec& mask : rep.partitioning.masks) {
      coded += encoded_mask_bits(mask);
    }
    const double coded_total =
        static_cast<double>(coded) + rep.partitioning.canceling_bits;
    ext.add_row({profile.name,
                 TextTable::millions(rep.partitioning.masking_bits),
                 TextTable::millions(static_cast<double>(coded)),
                 TextTable::num(rep.partitioning.masking_bits /
                                    static_cast<double>(coded == 0 ? 1
                                                                   : coded),
                                1) + "x",
                 TextTable::millions(coded_total),
                 TextTable::num(rep.canceling_only_bits / coded_total, 2)});
  }

  std::printf("== Table 1 (control bit data volume) =====================\n%s\n",
              bits.render().c_str());
  std::printf("== Table 1 (normalized test time) ========================\n%s\n",
              time.render().c_str());
  std::printf("== Extension: gap-coded partition masks ==================\n%s\n",
              ext.render().c_str());
  std::printf(
      "Paper reference — control bits: CKT-A 1515.15M/6.54M/5.35M "
      "(283.21x, 1.22x); CKT-B 108.23M/26.57M/12.22M (8.86x, 2.17x); "
      "CKT-C 292.93M/62.22M/41.13M (7.12x, 1.51x).\n"
      "Paper reference — test time: 1.14->1.09 (1.05x), 1.58->1.26 (1.26x), "
      "2.35->1.88 (1.25x).\n\n");
}

void BM_PartitionPatterns(benchmark::State& state, WorkloadProfile profile) {
  profile = scaled_profile(profile, 0.2);
  const XMatrix xm = generate_workload(profile);
  PartitionerConfig cfg;
  cfg.misr = kMisr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_patterns(xm, cfg));
  }
  state.counters["total_x"] = static_cast<double>(xm.total_x());
}

void BM_GenerateWorkload(benchmark::State& state, WorkloadProfile profile) {
  profile = scaled_profile(profile, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_workload(profile));
  }
}

BENCHMARK_CAPTURE(BM_PartitionPatterns, ckt_a_scaled, ckt_a_profile())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PartitionPatterns, ckt_b_scaled, ckt_b_profile())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PartitionPatterns, ckt_c_scaled, ckt_c_profile())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GenerateWorkload, ckt_b_scaled, ckt_b_profile())
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  // --telemetry <path> is ours, not google-benchmark's: strip it before
  // Initialize() so the flag parser never sees it.
  std::string telemetry_path;
  std::vector<char*> args(argv, argv + argc);
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string arg = args[i];
    if (arg == "--telemetry" && i + 1 < args.size()) {
      telemetry_path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  int filtered_argc = static_cast<int>(args.size());

  xh::Trace trace;
  xh::print_table1(telemetry_path.empty() ? nullptr : &trace);
  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path);
    xh::TelemetryMeta meta;
    meta.tool = "bench_table1";
    meta.run = {{"workloads", "ckt-a ckt-b ckt-c"},
                {"misr", "m=32 q=7"}};
    xh::write_telemetry_json(out, trace, meta);
    std::printf("telemetry written to %s\n", telemetry_path.c_str());
  }

  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
