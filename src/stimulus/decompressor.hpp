// LFSR-reseeding test-stimulus decompression (Könemann-style).
//
// The paper's opening sentence pairs stimulus compression with response
// compaction; this module is the stimulus half. An L-bit LFSR free-runs
// during scan load; a phase shifter (a fixed XOR of LFSR stages per chain)
// drives every scan-in pin. The loaded value of each scan cell is therefore
// a linear function of the seed over GF(2), so a deterministic pattern's
// CARE bits impose |care| linear constraints on L unknowns — solved with
// gf2::solve. Don't-care cells come out pseudo-random (free fill).
//
// Compression: L seed bits per pattern instead of one bit per scan cell.
// A pattern is encodable when its care-bit system is consistent (virtually
// always while |care| stays a few bits under L).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gf2/lfsr.hpp"
#include "gf2/matrix.hpp"
#include "response/geometry.hpp"
#include "scan/test_application.hpp"
#include "sim/logic.hpp"
#include "util/bitvec.hpp"

namespace xh {

class StimulusDecompressor {
 public:
  /// @p poly fixes the LFSR width (the seed length); @p taps_per_chain phase
  /// shifter taps are drawn per chain from @p phase_seed.
  StimulusDecompressor(FeedbackPolynomial poly, ScanGeometry geometry,
                       std::uint64_t phase_seed = 1,
                       std::size_t taps_per_chain = 3);

  std::size_t seed_bits() const { return poly_.degree(); }
  const ScanGeometry& geometry() const { return geometry_; }

  /// Expands a seed into a full scan load (one bit per cell).
  BitVec expand(const BitVec& seed) const;

  /// Seed-bit dependency of one cell's loaded value.
  const BitVec& cell_dependency(std::size_t cell) const;

  /// Finds a seed whose expansion matches every care bit
  /// (care_mask bit set ⇒ cell must load care_values bit). Returns nullopt
  /// when the care bits are not encodable with this seed length.
  std::optional<BitVec> solve_seed(const BitVec& care_mask,
                                   const BitVec& care_values) const;

 private:
  FeedbackPolynomial poly_;
  ScanGeometry geometry_;
  std::vector<std::vector<std::size_t>> phase_taps_;  // per chain
  std::vector<BitVec> cell_dep_;                      // per cell, over seed
};

/// One compressed pattern: the seed plus the (uncompressed) primary inputs.
struct CompressedPattern {
  BitVec seed;
  std::vector<Lv> pi;
};

struct CompressionResult {
  std::vector<CompressedPattern> seeds;       // encodable patterns
  std::vector<std::size_t> failed_patterns;   // indices that did not encode
  std::uint64_t care_bits = 0;
  std::uint64_t raw_scan_bits = 0;   // cells × encodable patterns
  std::uint64_t seed_data_bits = 0;  // L × encodable patterns

  double compression_ratio() const {
    return seed_data_bits == 0
               ? 0.0
               : static_cast<double>(raw_scan_bits) /
                     static_cast<double>(seed_data_bits);
  }
};

/// Compresses a deterministic pattern set: scan_in values of Lv::kX are
/// don't-cares (free fill); definite values are care bits. Primary inputs
/// ride along uncompressed (X PIs are filled with 0).
CompressionResult compress_patterns(const StimulusDecompressor& decomp,
                                    const std::vector<TestPattern>& patterns);

/// Reconstructs the applicable pattern from a compressed one.
TestPattern decompress_pattern(const StimulusDecompressor& decomp,
                               const CompressedPattern& compressed);

}  // namespace xh
