#pragma once

namespace fixture {

struct UtilThing {
  int width = 0;
};

}  // namespace fixture
