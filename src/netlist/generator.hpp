// Pseudo-random synthetic circuit generation.
//
// The paper evaluates on proprietary industrial designs; this generator is
// the open substitute. It emits structurally valid sequential netlists with
// controllable amounts of the X-sources the paper names: unscanned flops
// (uninitialized state) and tri-state buses (contention / floating).
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace xh {

/// Knobs for generate_circuit(). Defaults give a small but non-trivial
/// sequential circuit with a few X-sources.
struct GeneratorConfig {
  std::size_t num_inputs = 8;
  std::size_t num_outputs = 8;
  /// Combinational gate count (excludes tri-state/bus structures).
  std::size_t num_gates = 200;
  std::size_t num_dffs = 32;
  /// Fraction of DFFs left out of the scan chain (X-sources at capture).
  double nonscan_fraction = 0.10;
  /// Tri-state bus groups; each adds drivers_per_bus TRISTATE gates + 1 BUS.
  std::size_t num_buses = 2;
  std::size_t drivers_per_bus = 3;
  /// Locality: fanins are drawn from the most recent `locality_window`
  /// signals with this probability, giving realistic logic depth.
  double locality = 0.7;
  std::size_t locality_window = 24;
  std::uint64_t seed = 1;
};

/// Generates a finalized netlist. Deterministic in cfg (including seed).
/// Guarantees: every DFF is connected, every declared output exists, at
/// least one gate lies between inputs and outputs, and bus fanins are all
/// tri-state drivers.
Netlist generate_circuit(const GeneratorConfig& cfg);

}  // namespace xh
