// corpus: XH-HDR-002 must fire on using namespace at header scope.
#pragma once

#include <string>

using namespace std;

inline string shout(const string& s) { return s + "!"; }
