// corpus: XH-HDR-001 must fire when a header has no #pragma once at all.
#include <cstddef>

inline std::size_t identity(std::size_t n) { return n; }
