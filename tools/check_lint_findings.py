#!/usr/bin/env python3
"""Per-rule baseline gate for xh_lint findings documents.

Usage: check_lint_findings.py CURRENT.json BASELINE.json

Both files are xh-lint-findings/1 documents (xh_lint --json). The gate
compares the per-rule counts in "by_rule":

  * a rule whose count EXCEEDS the baseline fails the gate — new findings
    slipped in (the tree gate normally catches this first; this check is
    the evidence trail when it does, and the ratchet when a rule is ever
    grandfathered in with a non-zero baseline);
  * a rule whose count DROPPED BELOW the baseline also fails — findings
    were fixed, so the baseline must be tightened in the same change
    (tools/lint/findings_baseline.json), keeping it an exact record rather
    than a stale ceiling.

Rule ids are validated against the known family prefixes (the registry's
families, including the interprocedural XH-IPA-/XH-RACE- tier): a document
mentioning a rule from an unknown family is unusable input — the gate is
out of date relative to the linter and must be taught the family before
its counts mean anything.

Stdlib only; exit 0 on match, 1 on any divergence, 2 on unusable input.
"""

import json
import sys

KNOWN_FAMILIES = (
    "XH-DET-",
    "XH-ERR-",
    "XH-PARSE-",
    "XH-HDR-",
    "XH-INC-",
    "XH-API-",
    "XH-OBS-",
    "XH-SUP-",
    "XH-FLOW-",
    "XH-IPA-",
    "XH-RACE-",
)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "xh-lint-findings/1":
        print(f"error: {path}: not an xh-lint-findings/1 document",
              file=sys.stderr)
        sys.exit(2)
    by_rule = doc.get("by_rule", {})
    if not isinstance(by_rule, dict):
        print(f"error: {path}: by_rule is not an object", file=sys.stderr)
        sys.exit(2)
    for rule in by_rule:
        if not any(rule.startswith(fam) for fam in KNOWN_FAMILIES):
            print(f"error: {path}: rule '{rule}' is from an unknown family; "
                  "teach tools/check_lint_findings.py the family before "
                  "gating on it", file=sys.stderr)
            sys.exit(2)
    return by_rule


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    current = load(argv[1])
    baseline = load(argv[2])

    failures = []
    for rule in sorted(set(current) | set(baseline)):
        now = int(current.get(rule, 0))
        base = int(baseline.get(rule, 0))
        if now > base:
            failures.append(
                f"{rule}: {now} findings, baseline allows {base} — fix them "
                "or suppress with a justification")
        elif now < base:
            failures.append(
                f"{rule}: {now} findings, baseline records {base} — tighten "
                "the baseline in tools/lint/findings_baseline.json")
        else:
            print(f"ok: {rule}: {now}")

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(f"ok: per-rule counts match the baseline "
          f"({len(set(current) | set(baseline))} rules with findings)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
