// corpus: XH-DET-002 must fire on explicit iterator walks too.
#include <unordered_set>

int total(const std::unordered_set<int>& seen) {
  int sum = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) sum += *it;
  return sum;
}
