namespace fixture {

// xh-telemetry-schema-begin
const char* const kTelemetryNames[] = {
    "core.known_metric",
};
// xh-telemetry-schema-end

}  // namespace fixture
