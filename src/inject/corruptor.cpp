#include "inject/corruptor.hpp"

#include <algorithm>
#include <memory>

#include "gf2/matrix.hpp"
#include "util/check.hpp"

namespace xh {
namespace {

std::vector<CellRef> collect_cells(const ResponseMatrix& response,
                                   bool want_x) {
  std::vector<CellRef> out;
  for (std::size_t p = 0; p < response.num_patterns(); ++p) {
    for (std::size_t c = 0; c < response.num_cells(); ++c) {
      if (response.is_x(p, c) == want_x) out.push_back({p, c});
    }
  }
  return out;
}

std::vector<CellRef> pick(Rng& rng, std::vector<CellRef> candidates,
                          std::size_t count) {
  XH_REQUIRE(count <= candidates.size(),
             "not enough eligible cells to corrupt");
  std::vector<CellRef> chosen;
  chosen.reserve(count);
  for (const std::size_t i :
       rng.sample_without_replacement(candidates.size(), count)) {
    chosen.push_back(candidates[i]);
  }
  return chosen;
}

}  // namespace

std::vector<CellRef> Corruptor::add_undeclared_x(ResponseMatrix& response,
                                                 std::size_t count) {
  std::vector<CellRef> chosen =
      pick(rng_, collect_cells(response, /*want_x=*/false), count);
  for (const CellRef& ref : chosen) {
    response.set(ref.pattern, ref.cell, Lv::kX);
  }
  return chosen;
}

std::vector<CellRef> Corruptor::resolve_declared_x(ResponseMatrix& response,
                                                   std::size_t count) {
  std::vector<CellRef> chosen =
      pick(rng_, collect_cells(response, /*want_x=*/true), count);
  for (const CellRef& ref : chosen) {
    response.set(ref.pattern, ref.cell, rng_.chance(0.5) ? Lv::k1 : Lv::k0);
  }
  return chosen;
}

std::vector<CellRef> Corruptor::x_burst(ResponseMatrix& response,
                                        const MisrConfig& cfg,
                                        std::size_t burst_size) {
  const ScanGeometry& geo = response.geometry();
  XH_REQUIRE(burst_size <= cfg.size,
             "burst cannot exceed the MISR width (stages would collide)");
  XH_REQUIRE(burst_size <= geo.num_chains,
             "burst cannot exceed the chain count");
  const std::size_t pattern =
      static_cast<std::size_t>(rng_.below(response.num_patterns()));
  const std::size_t pos =
      static_cast<std::size_t>(rng_.below(geo.chain_length));
  std::vector<CellRef> chosen;
  chosen.reserve(burst_size);
  // Chains 0..burst_size-1 map to distinct MISR stages (stage = chain mod m),
  // so all burst_size X's enter the MISR on the same shift cycle.
  for (std::size_t chain = 0; chain < burst_size; ++chain) {
    const CellRef ref{pattern, geo.cell_index(chain, pos)};
    response.set(ref.pattern, ref.cell, Lv::kX);
    chosen.push_back(ref);
  }
  return chosen;
}

std::string Corruptor::truncate_text(const std::string& text,
                                     double keep_fraction) {
  const double f = std::clamp(keep_fraction, 0.0, 1.0);
  const std::size_t keep =
      static_cast<std::size_t>(static_cast<double>(text.size()) * f);
  return text.substr(0, keep);
}

std::string Corruptor::garble_text(const std::string& text,
                                   std::size_t edits) {
  // None of these characters is legal anywhere in the .xm / response /
  // .bench grammars, so every edit is detectable.
  static constexpr char kJunk[] = {'?', '!', ';', '~', '@', '%'};
  std::vector<std::size_t> editable;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\n') editable.push_back(i);
  }
  XH_REQUIRE(edits <= editable.size(), "not enough characters to garble");
  std::string out = text;
  for (const std::size_t i :
       rng_.sample_without_replacement(editable.size(), edits)) {
    out[editable[i]] = kJunk[rng_.below(sizeof(kJunk))];
  }
  return out;
}

std::string Corruptor::duplicate_line(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string::npos ? text.size() : nl;
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  XH_REQUIRE(lines.size() >= 2, "need at least two lines to duplicate one");
  const std::size_t victim =
      1 + static_cast<std::size_t>(rng_.below(lines.size() - 1));
  lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(victim),
               lines[victim]);
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

XCancelSession::CombinationTamper Corruptor::combination_tamper() {
  // The hook outlives this Corruptor call, so it owns its own stream,
  // forked deterministically from the parent seed.
  auto rng = std::make_shared<Rng>(rng_.next_u64());
  return [rng](std::vector<BitVec>& combos, const Gf2Matrix& xdeps) {
    if (combos.empty()) return;
    const std::size_t victim =
        static_cast<std::size_t>(rng->below(combos.size()));
    for (std::size_t r = 0; r < xdeps.rows(); ++r) {
      if (xdeps.row(r).any()) {
        // Toggling membership of a row with nonzero X dependency changes
        // the combination's dependency sum by that row — always nonzero,
        // so the contamination cannot slip through undetected.
        combos[victim].flip(r);
        return;
      }
    }
  };
}

}  // namespace xh
