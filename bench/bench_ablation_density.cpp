// Ablation C — X-density and correlation-strength sweep, including the
// superset X-canceling baseline [17,18].
//
// Two questions the paper's Table 1 hints at but does not sweep:
//   1. As X-density falls (CKT-A regime) the canceling-only baseline gets
//      cheap; where does the hybrid's advantage fade out?
//   2. The method monetizes inter-correlation; how does the win scale with
//      the fraction of X's that are actually clustered?
// The superset baseline shows the competing trade: it can undercut control
// bits but only by sacrificing observability (lost non-X observations),
// which the proposed method never does.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/chain_masking.hpp"
#include "baseline/superset.hpp"
#include "core/hybrid.hpp"
#include "util/table.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

const MisrConfig kMisr{32, 7};

WorkloadProfile base_profile() {
  WorkloadProfile p = scaled_profile(ckt_b_profile(), 0.4);
  p.name = "sweep";
  return p;
}

void print_density_sweep() {
  std::printf("== Ablation C1: X-density sweep (clustered fraction 0.55) ==\n");
  TextTable t({"X-density", "total X", "#partitions", "cancel-only bits",
               "proposed bits", "impv.", "test time [12]", "test time prop."});
  for (const double density :
       {0.0002, 0.001, 0.005, 0.01, 0.0275, 0.05}) {
    WorkloadProfile p = base_profile();
    p.x_density = density;
    const XMatrix xm = generate_workload(p);
    PipelineContext ctx;
    ctx.partitioner.misr = kMisr;
    const HybridReport rep = run_hybrid_analysis(xm, ctx);
    t.add_row({TextTable::num(density * 100.0, 2) + "%",
               std::to_string(rep.total_x),
               std::to_string(rep.partitioning.num_partitions()),
               TextTable::millions(rep.canceling_only_bits),
               TextTable::millions(rep.proposed_bits),
               TextTable::num(rep.improvement_over_canceling, 2),
               TextTable::num(rep.test_time_canceling_only, 2),
               TextTable::num(rep.test_time_proposed, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Expected: at very low density masking a partition cannot pay for its\n"
      "L*C control bits (improvement -> 1.0, the CKT-A regime); the win grows\n"
      "with density.\n\n");
}

void print_correlation_sweep() {
  std::printf(
      "== Ablation C2: inter-correlation sweep (density 2.75%%) ==\n");
  TextTable t({"clustered frac", "#partitions", "masked X / total",
               "proposed bits", "impv. over [12]", "superset bits [17,18]",
               "superset lost obs.", "chain-mask bits [3]",
               "chain-mask lost obs."});
  for (const double frac : {0.0, 0.2, 0.4, 0.55, 0.7, 0.9}) {
    WorkloadProfile p = base_profile();
    p.clustered_fraction = frac;
    const XMatrix xm = generate_workload(p);
    PipelineContext ctx;
    ctx.partitioner.misr = kMisr;
    const HybridReport rep = run_hybrid_analysis(xm, ctx);
    SupersetConfig scfg;
    scfg.misr = kMisr;
    scfg.max_growth = 0.25;
    const SupersetResult sup = superset_x_canceling(xm, scfg);
    t.add_row(
        {TextTable::num(frac, 2),
         std::to_string(rep.partitioning.num_partitions()),
         std::to_string(rep.partitioning.masked_x) + " / " +
             std::to_string(rep.total_x),
         TextTable::millions(rep.proposed_bits),
         TextTable::num(rep.improvement_over_canceling, 2),
         TextTable::millions(sup.control_bits),
         std::to_string(sup.lost_observations),
         TextTable::millions(static_cast<double>(
             chain_masking(xm).control_bits)),
         std::to_string(chain_masking(xm).lost_observations)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Expected: with no clusters the proposed method degenerates to\n"
      "canceling-only (impv. ~1.0, zero coverage risk); the win scales with\n"
      "correlation. The superset baseline cuts control bits even without\n"
      "clusters but pays in lost observations (non-X bits treated as X),\n"
      "which the proposed method never sacrifices.\n\n");
}

void BM_WorkloadAtDensity(benchmark::State& state) {
  WorkloadProfile p = scaled_profile(ckt_b_profile(), 0.2);
  p.x_density = static_cast<double>(state.range(0)) / 10000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_workload(p));
  }
}

void BM_SupersetBaseline(benchmark::State& state) {
  const XMatrix xm =
      generate_workload(scaled_profile(ckt_b_profile(), 0.2));
  SupersetConfig cfg;
  cfg.misr = kMisr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(superset_x_canceling(xm, cfg));
  }
}

BENCHMARK(BM_WorkloadAtDensity)->Arg(5)->Arg(100)->Arg(275)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SupersetBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::print_density_sweep();
  xh::print_correlation_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
