// The complete compressed-test architecture the paper's introduction frames:
//
//   seeds ──▶ LFSR decompressor ──▶ scan chains ──▶ circuit under test
//                                        │
//                                        ▼ capture (X's included)
//   masks ──▶ per-partition X-masking ──▶ X-canceling MISR ──▶ signatures
//
// Stimulus side: LFSR-reseeding compression of PODEM patterns (don't-cares
// free). Response side: the paper's pattern-partitioned hybrid. Both ends
// are exercised for real and the tester data budget is printed.
#include <cstdio>

#include "atpg/test_generation.hpp"
#include "core/tester_payload.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/generator.hpp"
#include "scan/test_application.hpp"
#include "stimulus/decompressor.hpp"

using namespace xh;

int main() {
  // A mid-size sequential circuit with both X-sources the paper names.
  GeneratorConfig gcfg;
  gcfg.seed = 321;
  gcfg.num_gates = 500;
  gcfg.num_dffs = 220;
  gcfg.nonscan_fraction = 0.08;
  gcfg.num_buses = 2;
  const Netlist nl = generate_circuit(gcfg);
  const ScanPlan plan = ScanPlan::build(nl, 8);
  std::printf("circuit %s: %zu gates, %zu scan cells in %zu chains\n",
              nl.name().c_str(), compute_stats(nl).gates,
              plan.num_scan_dffs(), plan.geometry().num_chains);

  // 1. ATPG with don't-cares preserved.
  AtpgConfig acfg;
  acfg.random_patterns = 0;
  acfg.fill_dont_cares = false;
  acfg.seed = 11;
  const AtpgResult atpg = generate_test_set(nl, plan, acfg);
  std::size_t care = 0;
  std::size_t slots = 0;
  for (const auto& p : atpg.patterns) {
    for (const Lv v : p.scan_in) {
      care += is_definite(v) ? 1u : 0u;
      ++slots;
    }
  }
  std::printf("ATPG: %zu patterns, %.1f%% coverage, care density %.1f%%\n",
              atpg.patterns.size(), 100.0 * atpg.coverage(),
              100.0 * static_cast<double>(care) /
                  static_cast<double>(slots == 0 ? 1 : slots));

  // 2. Stimulus compression.
  const StimulusDecompressor decomp(FeedbackPolynomial::primitive(48),
                                    plan.geometry(), 7);
  const CompressionResult comp = compress_patterns(decomp, atpg.patterns);
  std::printf("stimulus: %zu/%zu patterns encoded into %zu-bit seeds, "
              "%.1fx scan-data compression\n",
              comp.seeds.size(), atpg.patterns.size(), decomp.seed_bits(),
              comp.compression_ratio());

  // 3. Expand + apply.
  std::vector<TestPattern> expanded;
  for (const auto& cp : comp.seeds) {
    expanded.push_back(decompress_pattern(decomp, cp));
  }
  TestApplicator app(nl, plan);
  const ResponseMatrix response = app.capture(expanded);
  std::printf("responses: %zu X's (%.2f%% density)\n", response.total_x(),
              100.0 * response.x_density());

  // 4. Hybrid response compaction.
  PipelineContext ctx;
  ctx.partitioner.misr = {16, 4};
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  const TesterPayload payload = build_tester_payload(sim);
  std::printf("response side: %zu partitions, %llu X masked / %llu leaked, "
              "%zu MISR stops\n",
              sim.report.partitioning.num_partitions(),
              static_cast<unsigned long long>(sim.report.partitioning.masked_x),
              static_cast<unsigned long long>(sim.report.partitioning.leaked_x),
              sim.cancel.stops);

  // 5. The whole tester budget.
  const std::uint64_t stimulus_bits =
      static_cast<std::uint64_t>(comp.seeds.size()) * decomp.seed_bits();
  std::printf("\ntester data budget:\n");
  std::printf("  stimulus seeds:       %llu bits (raw scan data: %llu)\n",
              static_cast<unsigned long long>(stimulus_bits),
              static_cast<unsigned long long>(comp.raw_scan_bits));
  std::printf("  response control:     %zu bits raw masks + %zu bits "
              "cancel vectors (coded masks: %zu)\n",
              payload.raw_mask_bits, payload.cancel_bits,
              payload.coded_mask_bits);

  // 6. Confirm the expanded, hybrid-observed test still detects everything
  //    the don't-care test detected.
  FaultSimulator fsim(nl, plan);
  const FaultSimResult ideal = fsim.run(expanded, atpg.faults, observe_all());
  const FaultSimResult masked = fsim.run(
      expanded, atpg.faults,
      observe_with_partition_masks(sim.report.partitioning.partitions,
                                   sim.report.partitioning.masks));
  std::printf("\ncoverage: %.2f%% ideal, %.2f%% under hybrid masks — %s\n",
              100.0 * ideal.coverage(), 100.0 * masked.coverage(),
              ideal.num_detected == masked.num_detected ? "no loss" : "LOSS");
  return ideal.num_detected == masked.num_detected ? 0 : 1;
}
