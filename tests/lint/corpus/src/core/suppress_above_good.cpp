// corpus: an allow() on the line above covers the next line.
#include <cstdlib>

int noise() {
  // xh-lint: allow(XH-DET-001) corpus suppression demo, line-above form
  return std::rand();
}
