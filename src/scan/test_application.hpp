// Test application: drive patterns through the scan architecture and capture
// responses.
//
// Test protocol per pattern (standard stuck-at scan test):
//   1. shift the pattern's scan data into the scanned flops,
//   2. apply the primary-input vector,
//   3. let the combinational cloud settle,
//   4. capture every scanned flop's D input.
// Unscanned flops hold UNKNOWN state during capture (they are never
// initialized by the tester) — together with tri-state buses these are the
// X-sources whose captures pollute the response.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "response/response_matrix.hpp"
#include "scan/scan_plan.hpp"
#include "sim/logic.hpp"
#include "sim/parallel_sim.hpp"
#include "util/rng.hpp"

namespace xh {

/// One deterministic test: primary-input values (order of netlist.inputs())
/// and scan-in values (indexed by scan CELL index; padding cells ignored).
struct TestPattern {
  std::vector<Lv> pi;
  std::vector<Lv> scan_in;
};

/// Fully random pattern over a plan's inputs (fault-independent fill).
TestPattern random_pattern(const Netlist& nl, const ScanPlan& plan, Rng& rng);

/// Captures responses for a pattern set, 64 patterns per simulation sweep.
///
/// The optional stuck-at fault is injected for every pattern (single-fault
/// assumption). Padding cells capture deterministic 0.
class TestApplicator {
 public:
  TestApplicator(const Netlist& nl, const ScanPlan& plan);

  ResponseMatrix capture(const std::vector<TestPattern>& patterns) const;
  ResponseMatrix capture_faulty(const std::vector<TestPattern>& patterns,
                                GateId fault_gate, bool stuck_at_one) const;

 private:
  ResponseMatrix run(const std::vector<TestPattern>& patterns,
                     std::optional<ParallelSim::Fault> fault) const;

  const Netlist* nl_;
  const ScanPlan* plan_;
};

}  // namespace xh
