// Compile-time off switch: this translation unit builds with XH_OBS_NOOP
// (set on the obs_noop_test target only), selecting the obs_noop inline
// namespace. Every instrumentation helper must still type-check against the
// live signatures and leave the registry untouched, so a whole-tree
// -DXH_OBS_NOOP build compiles every instrumented call site to nothing.
// Linking against the live-mode library is the ODR point being exercised:
// distinct inline namespaces keep the two helper sets from colliding.
#ifndef XH_OBS_NOOP
#error "obs_noop_test must be compiled with XH_OBS_NOOP"
#endif

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "obs/telemetry_json.hpp"

namespace xh {
namespace {

TEST(ObsNoop, HelpersCompileAndDiscardEverything) {
  Trace t;
  obs_count(&t, "events");
  obs_count(&t, "events", 42);
  obs_gauge(&t, "ratio", 3.5);
  obs_record(&t, "sizes", 7);
  const TraceCounterHandle handle = obs_counter(&t, "hot");
  obs_add(handle);
  obs_add(handle, 9);
  { const ScopedSpan span(&t, "analysis"); }
  // The registry never saw any of it: call sites are compiled out.
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.open_spans(), 0u);
}

TEST(ObsNoop, NullTraceStillAccepted) {
  obs_count(nullptr, "a");
  obs_gauge(nullptr, "b", 1.0);
  obs_record(nullptr, "c", 2);
  obs_add(obs_counter(nullptr, "d"), 5);
  const ScopedSpan span(nullptr, "e");
}

TEST(ObsNoop, RegistryAndSerializerStayReal) {
  // The Trace class and the telemetry serializer are always live — only the
  // instrumentation helpers compile out — so telemetry consumers keep
  // working in a noop build (they just see empty sections).
  Trace t;
  t.counter("direct").value = 5;  // direct registry access is unaffected
  EXPECT_EQ(t.counters().at("direct").value, 5u);

  TelemetryMeta meta;
  meta.tool = "obs_noop_test";
  const std::string doc = telemetry_to_json(t, meta);
  EXPECT_NE(doc.find("\"schema\": \"xh-telemetry/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"direct\": 5"), std::string::npos);
}

}  // namespace
}  // namespace xh
