#include "lint/lint_core.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>

namespace xh::lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Content with comments and string/char literals blanked to spaces
/// (positions and line structure preserved), plus the suppression
/// directives harvested from the comments as they were erased.
struct Cleaned {
  std::vector<std::string> lines;
  /// allow[i] holds rule IDs suppressed on 1-based line i+1.
  std::vector<std::vector<std::string>> allow;
  std::vector<std::string> allow_file;
};

/// Parses "xh-lint: allow(ID[,ID...])" / "xh-lint: allow-file(ID[,ID...])"
/// directives out of one comment's text.
void parse_directives(const std::string& comment, std::size_t first_line,
                      std::size_t last_line, Cleaned& out) {
  std::size_t pos = 0;
  while ((pos = comment.find("xh-lint:", pos)) != std::string::npos) {
    std::size_t p = pos + 8;
    while (p < comment.size() && comment[p] == ' ') ++p;
    const bool file_scope = starts_with(comment.substr(p), "allow-file(");
    const bool line_scope = !file_scope && starts_with(comment.substr(p), "allow(");
    if (!file_scope && !line_scope) {
      pos = p;
      continue;
    }
    const std::size_t open = comment.find('(', p);
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    // Split the comma-separated rule list.
    std::vector<std::string> ids;
    std::string cur;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        if (!cur.empty()) ids.push_back(cur);
        cur.clear();
      } else if (c != ' ' && c != '\t') {
        cur.push_back(c);
      }
    }
    if (file_scope) {
      out.allow_file.insert(out.allow_file.end(), ids.begin(), ids.end());
    } else {
      // A line-scoped allow covers every line the comment touches plus the
      // following line, so both trailing and line-above styles work.
      for (std::size_t ln = first_line; ln <= last_line + 1; ++ln) {
        if (out.allow.size() < ln) out.allow.resize(ln);
        out.allow[ln - 1].insert(out.allow[ln - 1].end(), ids.begin(),
                                 ids.end());
      }
    }
    pos = close;
  }
}

Cleaned clean(const std::string& text) {
  Cleaned out;
  std::string code;
  code.reserve(text.size());

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string comment;
  std::string raw_delim;
  std::size_t line = 1;
  std::size_t comment_start = 1;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          comment.clear();
          comment_start = line;
          code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          comment.clear();
          comment_start = line;
          code += "  ";
          ++i;
        } else if (c == '"' &&
                   (i == 0 || text[i - 1] != 'R')) {
          state = State::kString;
          code += ' ';
        } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim"
          state = State::kRaw;
          raw_delim.clear();
          std::size_t j = i + 1;
          while (j < text.size() && text[j] != '(') {
            raw_delim.push_back(text[j]);
            ++j;
          }
          code += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code += ' ';
        } else {
          code += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          parse_directives(comment, comment_start, line, out);
          state = State::kCode;
          code += '\n';
        } else {
          comment.push_back(c);
          code += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          parse_directives(comment, comment_start, line, out);
          state = State::kCode;
          code += "  ";
          ++i;
        } else {
          comment.push_back(c);
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          code += "  ";
          ++i;
          if (next == '\n') ++line, code.back() = '\n';
        } else if (c == '"') {
          state = State::kCode;
          code += ' ';
        } else {
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code += ' ';
        } else {
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRaw: {
        const std::string closer = ")" + raw_delim + "\"";
        if (c == ')' && text.compare(i, closer.size(), closer) == 0) {
          state = State::kCode;
          for (std::size_t k = 0; k < closer.size(); ++k) code += ' ';
          i += closer.size() - 1;
        } else {
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
    if (c == '\n') ++line;
  }
  if (state == State::kLine || state == State::kBlock) {
    parse_directives(comment, comment_start, line, out);
  }

  // Split the blanked text into lines.
  std::string cur;
  for (const char c : code) {
    if (c == '\n') {
      out.lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.lines.push_back(cur);
  if (out.allow.size() < out.lines.size()) out.allow.resize(out.lines.size());
  return out;
}

/// Finds the next standalone-identifier occurrence of @p name at or after
/// @p from; returns npos when absent.
std::size_t find_ident(const std::string& line, const std::string& name,
                       std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

bool has_ident(const std::string& line, const std::string& name) {
  return find_ident(line, name) != std::string::npos;
}

/// True when @p name occurs as an identifier directly invoked: `name(` with
/// optional whitespace. `normalized_test_time(` must NOT match `time`.
///
/// Member calls (`sim.clock()`) and declarations (`void clock();`) are not
/// flagged: a scan-clock method shares a name with the libc wall-clock
/// query but has nothing to do with it. The preceding token decides:
/// `.`/`->` means member, a non-keyword identifier means declaration.
bool has_call(const std::string& line, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = find_ident(line, name, pos)) != std::string::npos) {
    std::size_t p = pos + name.size();
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
    if (p >= line.size() || line[p] != '(') {
      pos = p;
      continue;
    }
    // Inspect what precedes the identifier.
    std::size_t q = pos;
    while (q > 0 && (line[q - 1] == ' ' || line[q - 1] == '\t')) --q;
    const bool member_access =
        (q >= 1 && line[q - 1] == '.') ||
        (q >= 2 && line[q - 2] == '-' && line[q - 1] == '>');
    bool benign = member_access;
    if (!benign && q >= 2 && line[q - 1] == ':' && line[q - 2] == ':') {
      // Qualified name: `std::time(` and `steady_clock::now(` are the libc /
      // chrono queries; `CombSim::clock(` is an out-of-line member whose
      // name merely collides (a scan clock is not a wall clock).
      std::size_t s = q - 2;
      while (s > 0 && is_ident_char(line[s - 1])) --s;
      const std::string qual = line.substr(s, q - 2 - s);
      benign = !qual.empty() && qual != "std" && !ends_with(qual, "_clock") &&
               qual != "chrono";
    } else if (!benign && q >= 1 && is_ident_char(line[q - 1])) {
      // Preceding identifier: a declaration/definition (`void clock();`)
      // unless it is a control keyword (`return time(nullptr)`).
      std::size_t s = q;
      while (s > 0 && is_ident_char(line[s - 1])) --s;
      const std::string prev = line.substr(s, q - s);
      benign = prev != "return" && prev != "else" && prev != "case" &&
               prev != "co_return" && prev != "co_yield";
    }
    if (!benign) return true;
    pos = p;
  }
  return false;
}

/// Finds the first single ':' (a range-for separator, not a '::' scope
/// qualifier) at or after @p from; npos when absent.
std::size_t find_range_colon(const std::string& line, std::size_t from) {
  for (std::size_t i = from; i < line.size(); ++i) {
    if (line[i] != ':') continue;
    const bool left = i > 0 && line[i - 1] == ':';
    const bool right = i + 1 < line.size() && line[i + 1] == ':';
    if (!left && !right) return i;
    if (right) ++i;  // skip the pair
  }
  return std::string::npos;
}

/// Collects names of variables/members declared with an unordered container
/// type anywhere in @p cleaned full text (declarations may span lines).
std::vector<std::string> harvest_unordered_names(
    const std::vector<std::string>& lines) {
  std::string text;
  for (const auto& l : lines) {
    text += l;
    text += '\n';
  }
  std::vector<std::string> names;
  for (const char* kind : {"unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset"}) {
    std::size_t pos = 0;
    while ((pos = find_ident(text, kind, pos)) != std::string::npos) {
      std::size_t p = pos + std::string(kind).size();
      while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) ++p;
      if (p >= text.size() || text[p] != '<') {
        pos = p;
        continue;
      }
      // Match the template argument list (angle brackets nest; '>>' closes
      // two levels at once in token terms but we count characters, which is
      // equivalent here).
      int depth = 0;
      while (p < text.size()) {
        if (text[p] == '<') ++depth;
        if (text[p] == '>') {
          --depth;
          if (depth == 0) {
            ++p;
            break;
          }
        }
        ++p;
      }
      // Skip whitespace / reference / pointer markers, then read the
      // declared identifier (if this was a type use in a declaration).
      while (p < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[p])) ||
              text[p] == '&' || text[p] == '*')) {
        ++p;
      }
      std::string name;
      while (p < text.size() && is_ident_char(text[p])) {
        name.push_back(text[p]);
        ++p;
      }
      if (!name.empty()) names.push_back(name);
      pos = p;
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

struct RuleContext {
  const SourceFile* file = nullptr;
  const Cleaned* cleaned = nullptr;
  std::vector<std::string> unordered_names;
  bool is_header = false;
  bool in_bench = false;
  bool in_engine_or_core = false;
  std::vector<Finding>* out = nullptr;
};

void report(const RuleContext& ctx, std::size_t line_idx,
            const std::string& rule, const std::string& message) {
  ctx.out->push_back(
      {ctx.file->path, line_idx + 1, rule, message});
}

// ---- XH-DET-001: nondeterminism sources --------------------------------

void rule_det001(const RuleContext& ctx) {
  static const std::array<const char*, 7> kRandom = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "random"};
  static const std::array<const char*, 4> kTime = {"time", "clock",
                                                   "gettimeofday",
                                                   "clock_gettime"};
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    for (const char* fn : kRandom) {
      if (has_call(line, fn)) {
        report(ctx, i, "XH-DET-001",
               std::string("call to '") + fn +
                   "' — use the seeded xh::Rng so runs are reproducible");
      }
    }
    if (has_ident(line, "random_device")) {
      report(ctx, i, "XH-DET-001",
             "std::random_device draws entropy from the host — seed xh::Rng "
             "explicitly instead");
    }
    if (ctx.in_bench) continue;  // timing is the whole point of bench/
    for (const char* fn : kTime) {
      if (has_call(line, fn)) {
        report(ctx, i, "XH-DET-001",
               std::string("call to '") + fn +
                   "' — wall-clock queries are banned outside bench/");
      }
    }
    if (has_call(line, "now")) {
      report(ctx, i, "XH-DET-001",
             "std::chrono ...::now() is banned outside bench/ — results must "
             "not depend on when they are computed");
    }
  }
}

// ---- XH-DET-002: unordered-container iteration -------------------------

void rule_det002(const RuleContext& ctx) {
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    for (const std::string& name : ctx.unordered_names) {
      // Range-for over the container: `for (... : name)`.
      const std::size_t for_pos = find_ident(line, "for");
      const std::size_t colon =
          for_pos == std::string::npos
              ? std::string::npos
              : find_range_colon(line, for_pos);
      if (for_pos != std::string::npos && colon != std::string::npos &&
          find_ident(line, name, colon) != std::string::npos) {
        report(ctx, i, "XH-DET-002",
               "iteration over unordered container '" + name +
                   "' — hash order is nondeterministic across libc++/libstdc++ "
                   "and load factors; sort before emitting");
        continue;
      }
      // Iterator walk: name.begin() / name.cbegin().
      for (const char* b : {".begin", ".cbegin"}) {
        const std::size_t p = find_ident(line, name);
        if (p != std::string::npos &&
            line.compare(p + name.size(), std::string(b).size(), b) == 0) {
          report(ctx, i, "XH-DET-002",
                 "iterator over unordered container '" + name +
                     "' — hash order is nondeterministic; sort before "
                     "emitting");
        }
      }
    }
  }
}

// ---- XH-ERR-001: diagnostics routing in engine/core --------------------

void rule_err001(const RuleContext& ctx) {
  if (!ctx.in_engine_or_core) return;
  static const std::array<const char*, 5> kAborts = {
      "abort", "exit", "_Exit", "quick_exit", "terminate"};
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    if (has_ident(line, "throw")) {
      report(ctx, i, "XH-ERR-001",
             "bare throw in src/core//src/engine/ — route through "
             "XH_REQUIRE/XH_ASSERT or the xh::Diagnostics collector");
    }
    for (const char* fn : kAborts) {
      if (has_call(line, fn)) {
        report(ctx, i, "XH-ERR-001",
               std::string("call to '") + fn +
                   "' — engine/core must degrade through xh::Diagnostics, "
                   "never kill the process");
      }
    }
  }
}

// ---- XH-PARSE-001: raw numeric parsing ---------------------------------

void rule_parse001(const RuleContext& ctx) {
  static const std::array<const char*, 16> kParsers = {
      "atoi", "atol", "atoll", "atof", "strtol", "strtoul", "strtoll",
      "strtoull", "strtod", "strtof", "stoi", "stol", "stoll", "stoul",
      "stoull", "stod"};
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    for (const char* fn : kParsers) {
      if (has_call(ctx.cleaned->lines[i], fn)) {
        report(ctx, i, "XH-PARSE-001",
               std::string("call to '") + fn +
                   "' silently accepts junk/overflow — use "
                   "xh::parse_u64/parse_size/parse_f64");
      }
    }
  }
}

// ---- XH-HDR-001 / XH-HDR-002: header hygiene ---------------------------

void rule_headers(const RuleContext& ctx) {
  if (!ctx.is_header) return;
  bool pragma_seen = false;
  bool code_before_pragma = false;
  std::size_t first_code_line = 0;
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    const std::size_t nb = line.find_first_not_of(" \t");
    if (nb == std::string::npos) continue;
    if (line.compare(nb, 12, "#pragma once") == 0) {
      pragma_seen = true;
      break;
    }
    if (!code_before_pragma) {
      code_before_pragma = true;
      first_code_line = i;
    }
  }
  if (!pragma_seen || code_before_pragma) {
    report(ctx, first_code_line, "XH-HDR-001",
           pragma_seen
               ? "#pragma once must precede all code in a header"
               : "header is missing #pragma once");
  }
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    const std::size_t u = find_ident(line, "using");
    if (u != std::string::npos &&
        find_ident(line, "namespace", u) != std::string::npos) {
      report(ctx, i, "XH-HDR-002",
             "using namespace in a header leaks into every includer");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"XH-DET-001",
       "nondeterminism source (rand/random_device/time/chrono-now) in "
       "library code"},
      {"XH-DET-002",
       "iteration over an unordered container (hash order leaks into "
       "output)"},
      {"XH-ERR-001",
       "bare throw/abort/exit in src/core/ or src/engine/ (xh::Diagnostics "
       "routing is mandated)"},
      {"XH-PARSE-001",
       "raw atoi/strtol/stoul-style parsing instead of util/parse strict "
       "helpers"},
      {"XH-HDR-001", "header missing #pragma once before any code"},
      {"XH-HDR-002", "using namespace at header scope"},
  };
  return kRules;
}

std::vector<Finding> scan_file(const SourceFile& file,
                               const std::string* sibling_header) {
  RuleContext ctx;
  const Cleaned cleaned = clean(file.content);
  ctx.file = &file;
  ctx.cleaned = &cleaned;
  ctx.is_header = ends_with(file.path, ".hpp") || ends_with(file.path, ".h");
  ctx.in_bench = starts_with(file.path, "bench/");
  ctx.in_engine_or_core = starts_with(file.path, "src/core/") ||
                          starts_with(file.path, "src/engine/");
  ctx.unordered_names = harvest_unordered_names(cleaned.lines);
  if (sibling_header != nullptr) {
    const Cleaned sib = clean(*sibling_header);
    for (const auto& n : harvest_unordered_names(sib.lines)) {
      ctx.unordered_names.push_back(n);
    }
    std::sort(ctx.unordered_names.begin(), ctx.unordered_names.end());
    ctx.unordered_names.erase(
        std::unique(ctx.unordered_names.begin(), ctx.unordered_names.end()),
        ctx.unordered_names.end());
  }

  std::vector<Finding> raw;
  ctx.out = &raw;
  rule_det001(ctx);
  rule_det002(ctx);
  rule_err001(ctx);
  rule_parse001(ctx);
  rule_headers(ctx);

  // Apply suppressions and emit in (line, rule) order so output is stable
  // regardless of rule execution order.
  std::vector<Finding> out;
  for (const Finding& f : raw) {
    const auto allowed = [&](const std::vector<std::string>& ids) {
      return std::find(ids.begin(), ids.end(), f.rule) != ids.end();
    };
    if (allowed(cleaned.allow_file)) continue;
    if (f.line - 1 < cleaned.allow.size() && allowed(cleaned.allow[f.line - 1])) {
      continue;
    }
    out.push_back(f);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::string to_string(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace xh::lint
