#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "kernels/kernels.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, ConstructClearedAndSet) {
  BitVec cleared(100);
  EXPECT_EQ(cleared.count(), 0u);
  BitVec set(100, true);
  EXPECT_EQ(set.count(), 100u);
  EXPECT_TRUE(set.get(0));
  EXPECT_TRUE(set.get(99));
}

TEST(BitVec, SetGetClearFlip) {
  BitVec v(70);
  v.set(3);
  v.set(64);
  EXPECT_TRUE(v.get(3));
  EXPECT_TRUE(v.get(64));
  EXPECT_FALSE(v.get(4));
  v.clear(3);
  EXPECT_FALSE(v.get(3));
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  v.flip(64);
  EXPECT_TRUE(v.get(64));
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(10);
  EXPECT_THROW(v.get(10), std::invalid_argument);
  EXPECT_THROW(v.set(10), std::invalid_argument);
  EXPECT_THROW(v.flip(11), std::invalid_argument);
}

TEST(BitVec, TailBitsStayZeroAfterFill) {
  BitVec v(65, true);
  EXPECT_EQ(v.count(), 65u);
  v.fill(true);
  EXPECT_EQ(v.count(), 65u);
  v.fill(false);
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, CountAcrossWordBoundaries) {
  BitVec v(200);
  for (std::size_t i = 0; i < 200; i += 7) v.set(i);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 200; i += 7) ++expected;
  EXPECT_EQ(v.count(), expected);
}

TEST(BitVec, FindFirstAndNext) {
  BitVec v(130);
  EXPECT_EQ(v.find_first(), 130u);
  v.set(5);
  v.set(64);
  v.set(129);
  EXPECT_EQ(v.find_first(), 5u);
  EXPECT_EQ(v.find_next(6), 64u);
  EXPECT_EQ(v.find_next(64), 64u);
  EXPECT_EQ(v.find_next(65), 129u);
  EXPECT_EQ(v.find_next(130), 130u);
}

TEST(BitVec, SetBitsRoundTrip) {
  BitVec v(300);
  const std::vector<std::size_t> want = {0, 1, 63, 64, 65, 128, 299};
  for (const auto i : want) v.set(i);
  EXPECT_EQ(v.set_bits(), want);
}

TEST(BitVec, XorAndOrSemantics) {
  BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  BitVec x = a;
  x ^= b;
  EXPECT_EQ(x.to_string(), "0110");
  BitVec n = a;
  n &= b;
  EXPECT_EQ(n.to_string(), "1000");
  BitVec o = a;
  o |= b;
  EXPECT_EQ(o.to_string(), "1110");
}

TEST(BitVec, AndNot) {
  BitVec a = BitVec::from_string("1111");
  a.and_not(BitVec::from_string("0101"));
  EXPECT_EQ(a.to_string(), "1010");
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(4);
  BitVec b(5);
  EXPECT_THROW(a ^= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a.intersects(b), std::invalid_argument);
}

TEST(BitVec, IntersectsAndSubset) {
  const BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("0011");
  const BitVec c = BitVec::from_string("1000");
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.intersects(c));
  EXPECT_TRUE(c.is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(c));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(BitVec, ResizeGrowClearsNewBits) {
  BitVec v(3, true);
  v.resize(100);
  EXPECT_EQ(v.count(), 3u);
  EXPECT_FALSE(v.get(50));
}

TEST(BitVec, ResizeShrinkDropsBits) {
  BitVec v(100, true);
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.count(), 10u);
  v.resize(100);
  EXPECT_EQ(v.count(), 10u) << "shrunk-away bits must not resurface";
}

TEST(BitVec, FromStringIgnoresSeparators) {
  const BitVec v = BitVec::from_string("10 01_1\n1");
  EXPECT_EQ(v.to_string(), "100111");
}

TEST(BitVec, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVec::from_string("10a1"), std::invalid_argument);
}

TEST(BitVec, EqualityIncludesSize) {
  EXPECT_FALSE(BitVec(4) == BitVec(5));
  EXPECT_TRUE(BitVec::from_string("0101") == BitVec::from_string("0101"));
}

TEST(BitVec, ValueOperators) {
  const BitVec a = BitVec::from_string("110");
  const BitVec b = BitVec::from_string("011");
  EXPECT_EQ((a ^ b).to_string(), "101");
  EXPECT_EQ((a & b).to_string(), "010");
  EXPECT_EQ((a | b).to_string(), "111");
}

// Property: operations agree with a naive bool-vector model.
TEST(BitVecProperty, MatchesNaiveModel) {
  Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.below(400));
    std::vector<bool> ma(n), mb(n);
    BitVec a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.3)) { ma[i] = true; a.set(i); }
      if (rng.chance(0.3)) { mb[i] = true; b.set(i); }
    }
    BitVec x = a ^ b;
    BitVec y = a & b;
    std::size_t count = 0;
    bool intersects = false;
    bool subset = true;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x.get(i), ma[i] != mb[i]);
      EXPECT_EQ(y.get(i), ma[i] && mb[i]);
      if (ma[i]) ++count;
      if (ma[i] && mb[i]) intersects = true;
      if (ma[i] && !mb[i]) subset = false;
    }
    EXPECT_EQ(a.count(), count);
    EXPECT_EQ(a.intersects(b), intersects);
    EXPECT_EQ(a.is_subset_of(b), subset);
  }
}

// Property: the allocation-free fused counts agree with the naive
// materialize-then-count formulation on every size class (sub-word,
// word-aligned, multi-word with a ragged tail).
TEST(BitVecProperty, FusedCountsMatchNaiveFormulation) {
  Rng rng(1234);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.below(300));
    BitVec a(n);
    BitVec b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.4)) a.set(i);
      if (rng.chance(0.4)) b.set(i);
    }
    EXPECT_EQ(kernels::and_count(a, b), (a & b).count());
    BitVec diff = a;
    diff.and_not(b);
    EXPECT_EQ(kernels::and_not_count(a, b), diff.count());
    BitVec rdiff = b;
    rdiff.and_not(a);
    EXPECT_EQ(kernels::and_not_count(b, a), rdiff.count());
  }
}

TEST(BitVec, FusedCountsRejectMismatchedSizes) {
  EXPECT_THROW(kernels::and_count(BitVec(4), BitVec(5)), std::invalid_argument);
  EXPECT_THROW(kernels::and_not_count(BitVec(4), BitVec(5)), std::invalid_argument);
}

TEST(BitVecProperty, FindNextEnumeratesExactlySetBits) {
  Rng rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.below(500));
    BitVec v(n);
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.1)) { v.set(i); want.push_back(i); }
    }
    EXPECT_EQ(v.set_bits(), want);
    EXPECT_EQ(v.count(), want.size());
  }
}

}  // namespace
}  // namespace xh
