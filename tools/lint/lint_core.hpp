// Project-specific determinism / hygiene lint for the xhybrid tree.
//
// xh_lint is a token-level scanner (no full C++ parse) that enforces the
// invariants the library relies on implicitly: bit-determinism of everything
// that feeds emitted output, mandatory xh::Diagnostics routing in the
// engine/core layers, strict numeric parsing, and header hygiene. Rules are
// deliberately syntactic — the point is that they run on every line of every
// file in milliseconds, complementing the sampled runtime tests.
//
// Rules (see DESIGN.md §9 for the rationale table):
//   XH-DET-001   nondeterminism source (rand/random_device/time/chrono now)
//   XH-DET-002   iteration over an unordered container
//   XH-ERR-001   bare throw/abort/exit in src/core/ or src/engine/
//   XH-PARSE-001 raw numeric parsing instead of util/parse strict helpers
//   XH-HDR-001   header missing #pragma once before any code
//   XH-HDR-002   using namespace at header scope
//
// Suppression: `// xh-lint: allow(XH-DET-002)` on the offending line or the
// line directly above it; `// xh-lint: allow-file(XH-DET-002)` anywhere in
// the file suppresses the rule for the whole file. Multiple rule IDs may be
// comma-separated inside one allow(...).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xh::lint {

struct Finding {
  std::string path;     // repo-relative path, forward slashes
  std::size_t line = 0; // 1-based
  std::string rule;     // e.g. "XH-DET-001"
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Static description of every rule, for --list-rules and docs.
const std::vector<RuleInfo>& rules();

/// One file to scan. `path` is the repo-relative path (forward slashes);
/// rule applicability keys off its leading directory (src/, tools/, bench/)
/// and extension (.hpp/.h vs .cpp/.cc).
struct SourceFile {
  std::string path;
  std::string content;
};

/// Scans one file. @p sibling_header, when non-null, is the content of the
/// same-stem .hpp next to a .cpp: unordered-container members declared there
/// extend XH-DET-002 detection to out-of-line member functions.
std::vector<Finding> scan_file(const SourceFile& file,
                               const std::string* sibling_header = nullptr);

/// Formats a finding as "path:line: [RULE] message".
std::string to_string(const Finding& f);

}  // namespace xh::lint
