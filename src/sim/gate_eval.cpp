#include "sim/gate_eval.hpp"

#include "util/check.hpp"

namespace xh {

Lv evaluate_combinational(const Netlist& nl, GateId id,
                          const std::vector<Lv>& values) {
  const Gate& g = nl.gate(id);
  XH_REQUIRE(is_combinational(g.type) && g.type != GateType::kDff,
             "evaluate_combinational needs a combinational gate");
  const auto in = [&](std::size_t k) { return values[g.fanin[k]]; };
  switch (g.type) {
    case GateType::kConst0:
      return Lv::k0;
    case GateType::kConst1:
      return Lv::k1;
    case GateType::kBuf:
      return absorb_z(in(0));
    case GateType::kNot:
      return lv_not(in(0));
    case GateType::kAnd:
    case GateType::kNand: {
      Lv acc = in(0);
      for (std::size_t k = 1; k < g.fanin.size(); ++k) acc = lv_and(acc, in(k));
      return g.type == GateType::kAnd ? absorb_z(acc) : lv_not(acc);
    }
    case GateType::kOr:
    case GateType::kNor: {
      Lv acc = in(0);
      for (std::size_t k = 1; k < g.fanin.size(); ++k) acc = lv_or(acc, in(k));
      return g.type == GateType::kOr ? absorb_z(acc) : lv_not(acc);
    }
    case GateType::kXor:
    case GateType::kXnor: {
      Lv acc = in(0);
      for (std::size_t k = 1; k < g.fanin.size(); ++k) acc = lv_xor(acc, in(k));
      return g.type == GateType::kXor ? absorb_z(acc) : lv_not(acc);
    }
    case GateType::kMux:
      return lv_mux(in(0), in(1), in(2));
    case GateType::kTristate:
      return lv_tristate(in(0), in(1));
    case GateType::kBus: {
      bool has0 = false;
      bool has1 = false;
      bool hasx = false;
      for (std::size_t k = 0; k < g.fanin.size(); ++k) {
        const Lv v = in(k);
        if (v == Lv::k0) has0 = true;
        if (v == Lv::k1) has1 = true;
        if (v == Lv::kX) hasx = true;
      }
      // One or more agreeing drivers win; contention, unknown drivers and a
      // floating bus read X.
      if (hasx || (has0 && has1) || (!has0 && !has1)) return Lv::kX;
      return has1 ? Lv::k1 : Lv::k0;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  XH_ASSERT(false, "unhandled gate type");
  return Lv::kX;
}

}  // namespace xh
