// PODEM (Path-Oriented DEcision Making) deterministic test generation.
//
// Implemented as dual three-valued simulation: a good machine and a faulty
// machine run side by side over the same partial input assignment; X marks
// "not yet assigned". Three-valued simulation is monotone in assignments
// (definite values never change as X's get filled in), which yields exact
// early conflict detection: once every observation point is definite and
// equal in both machines, no completion can detect the fault.
//
// Controllable inputs are the primary inputs and the scanned flops; the
// observation points are the scanned flops' capture values. Unscanned flops
// and floating/contending buses stay X — PODEM navigates around them exactly
// like a commercial ATPG must.
#pragma once

#include <cstdint>
#include <optional>

#include "fault/fault_model.hpp"
#include "fault/testability.hpp"
#include "netlist/netlist.hpp"
#include "scan/scan_plan.hpp"
#include "scan/test_application.hpp"
#include "sim/logic.hpp"

namespace xh {

struct PodemStats {
  std::size_t decisions = 0;
  std::size_t backtracks = 0;
  bool aborted = false;  // hit the backtrack limit (fault MAY be testable)
};

class Podem {
 public:
  Podem(const Netlist& nl, const ScanPlan& plan);

  /// Generates a test for @p fault or returns nullopt (untestable, or
  /// aborted — see stats().aborted). Unassigned inputs in the returned
  /// pattern are filled with pseudo-random values from @p fill_seed, or left
  /// as Lv::kX don't-cares when @p fill_dont_cares is false (the form a
  /// stimulus decompressor wants).
  std::optional<TestPattern> generate(const StuckFault& fault,
                                      std::size_t backtrack_limit = 2000,
                                      std::uint64_t fill_seed = 1,
                                      bool fill_dont_cares = true);

  const PodemStats& stats() const { return stats_; }

 private:
  struct Assignment {
    GateId input;       // PI or scanned DFF
    bool value;
    bool tried_both;
  };

  void simulate(const StuckFault& fault);
  bool detected(const StuckFault& fault) const;
  bool conflict(const StuckFault& fault) const;
  /// X-path check: can the fault effect still reach an observer through
  /// gates whose output is unresolved? False ⇒ no completion detects.
  bool x_path_exists(const StuckFault& fault) const;
  /// Finds (gate, value) to pursue next; nullopt when the D-frontier is gone.
  std::optional<std::pair<GateId, bool>> objective(const StuckFault& fault);
  /// Walks an X-path from the objective to a controllable input; returns the
  /// input and the value to assign, or nullopt when no path exists.
  std::optional<std::pair<GateId, bool>> backtrace(GateId gate, bool value);

  const Netlist* nl_;
  const ScanPlan* plan_;
  Testability scoap_;
  std::vector<Lv> good_;
  std::vector<Lv> bad_;
  std::vector<Lv> assignment_;   // per gate id; X = unassigned (inputs only)
  std::vector<bool> in_fault_cone_;
  std::vector<GateId> observers_;  // scanned DFFs
  PodemStats stats_;
};

}  // namespace xh
