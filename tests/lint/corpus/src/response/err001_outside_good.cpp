// corpus: bare throw is allowed outside src/core//src/engine/ — parse
// layers (response/io) legitimately hard-fail on damaged serialized input.
#include <stdexcept>

void reject(bool damaged) {
  if (damaged) throw std::invalid_argument("damaged input");
}
