#pragma once

#include "util/base.hpp"

namespace fixture {

struct MiddleThing {
  UtilThing base;
  int depth = 0;
};

}  // namespace fixture
