// Cross-backend bit-identity suite (DESIGN.md §12): the partition search
// must not care where the X matrix lives. For randomized workloads, every
// backend — CSR, TEBM, mmap — must drive the engine to the seed oracle's
// exact bits (partition_patterns_reference), agree at EVERY accepted round
// boundary, under both split-cell policies, and resume from a checkpoint
// taken against one incarnation into a fresh store of the same backend
// bit-identically. This is the contract that makes --xm-backend a pure
// capacity knob, never a results knob.
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "engine/partition_engine.hpp"
#include "engine/partition_types.hpp"
#include "kernels/kernels.hpp"
#include "response/x_matrix.hpp"
#include "service/checkpoint.hpp"
#include "service/job_runner.hpp"
#include "storage/store_factory.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/diagnostics.hpp"
#include "util/rng.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

namespace fs = std::filesystem;

constexpr XmBackend kAllBackends[] = {XmBackend::kCsr, XmBackend::kTebm,
                                      XmBackend::kMmap};

XMatrix random_matrix(Rng& rng) {
  WorkloadProfile profile;
  profile.name = "xbackend";
  profile.geometry = {2 + static_cast<std::size_t>(rng.below(10)),
                      4 + static_cast<std::size_t>(rng.below(24))};
  profile.num_patterns = 16 + static_cast<std::size_t>(rng.below(300));
  profile.x_density = 0.005 + 0.10 * rng.uniform();
  profile.clustered_fraction = rng.uniform();
  profile.cluster_cells_mean = 2 + static_cast<std::size_t>(rng.below(10));
  profile.cluster_patterns_mean = 2 + static_cast<std::size_t>(rng.below(10));
  profile.seed = rng.next_u64();
  return generate_workload(profile);
}

void expect_identical(const PartitionResult& want, const PartitionResult& got,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(want.partitions.size(), got.partitions.size());
  for (std::size_t i = 0; i < want.partitions.size(); ++i) {
    EXPECT_TRUE(want.partitions[i] == got.partitions[i]) << "partition " << i;
    EXPECT_TRUE(want.masks[i] == got.masks[i]) << "mask " << i;
  }
  EXPECT_EQ(want.masked_x, got.masked_x);
  EXPECT_EQ(want.leaked_x, got.leaked_x);
  EXPECT_EQ(want.total_bits, got.total_bits);
  EXPECT_EQ(want.masking_bits, got.masking_bits);
  EXPECT_EQ(want.canceling_bits, got.canceling_bits);
  ASSERT_EQ(want.history.size(), got.history.size());
  for (std::size_t i = 0; i < want.history.size(); ++i) {
    SCOPED_TRACE("round " + std::to_string(i));
    EXPECT_EQ(want.history[i].round, got.history[i].round);
    EXPECT_EQ(want.history[i].num_partitions, got.history[i].num_partitions);
    EXPECT_EQ(want.history[i].masked_x, got.history[i].masked_x);
    EXPECT_EQ(want.history[i].leaked_x, got.history[i].leaked_x);
    EXPECT_EQ(want.history[i].total_bits, got.history[i].total_bits);
    EXPECT_EQ(want.history[i].split_cell, got.history[i].split_cell);
    EXPECT_EQ(want.history[i].accepted, got.history[i].accepted);
  }
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// The headline pin: randomized (geometry, density, seed, policy)
// combinations; every backend lands on the reference partitioner's bits.
TEST(CrossBackend, AllBackendsMatchTheSeedOracleOnRandomWorkloads) {
  Rng rng(20260808);
  for (int iter = 0; iter < 18; ++iter) {
    const XMatrix xm = random_matrix(rng);
    PartitionerConfig cfg;
    cfg.misr = {8 + static_cast<std::size_t>(rng.below(48)),
                2 + static_cast<std::size_t>(rng.below(6))};
    cfg.cell_choice = (iter % 2 == 0) ? SplitCellChoice::kLowestIndex
                                      : SplitCellChoice::kRandom;
    cfg.allow_singleton_groups = iter % 5 == 0;
    cfg.seed = rng.next_u64();
    const PartitionResult want = partition_patterns_reference(xm, cfg);
    for (const XmBackend backend : kAllBackends) {
      const std::unique_ptr<XMatrixStore> store = make_store(xm, backend);
      PartitionEngine engine(*store, cfg);
      expect_identical(want, engine.run(),
                       "iter " + std::to_string(iter) + " " +
                           store->backend_name());
    }
  }
}

// Lockstep stepping: the backends agree not only on the final result but at
// every intermediate round boundary — same outcome, same accepted history.
TEST(CrossBackend, BackendsAgreeAtEveryRoundBoundary) {
  Rng rng(424242);
  for (const SplitCellChoice choice :
       {SplitCellChoice::kLowestIndex, SplitCellChoice::kRandom}) {
    const XMatrix xm = random_matrix(rng);
    PartitionerConfig cfg;
    cfg.misr = {16, 4};
    cfg.cell_choice = choice;
    cfg.seed = 7;

    std::vector<std::unique_ptr<XMatrixStore>> stores;
    std::vector<std::unique_ptr<PartitionEngine>> engines;
    for (const XmBackend backend : kAllBackends) {
      stores.push_back(make_store(xm, backend));
      engines.push_back(std::make_unique<PartitionEngine>(*stores.back(), cfg));
    }
    while (!engines.front()->finished()) {
      const PartitionEngine::StepOutcome want = engines.front()->step();
      for (std::size_t i = 1; i < engines.size(); ++i) {
        SCOPED_TRACE(stores[i]->backend_name());
        EXPECT_EQ(engines[i]->step(), want);
        EXPECT_EQ(engines[i]->num_partitions(),
                  engines.front()->num_partitions());
        EXPECT_EQ(engines[i]->masked_x(), engines.front()->masked_x());
        EXPECT_EQ(engines[i]->finished(), engines.front()->finished());
      }
    }
  }
}

// Checkpoint resume across incarnations, per backend: interrupt at every
// boundary, push the state through the xh-ckpt/1 codec, restore into a
// FRESH store of the same backend, finish — the oracle's exact bits.
TEST(CrossBackend, CheckpointResumeIsBitIdenticalPerBackend) {
  Rng rng(515151);
  const XMatrix xm = random_matrix(rng);
  PartitionerConfig cfg;
  cfg.misr = {16, 4};
  cfg.cell_choice = SplitCellChoice::kRandom;
  cfg.seed = 11;
  const PartitionResult oracle = partition_patterns_reference(xm, cfg);

  for (const XmBackend backend : kAllBackends) {
    const std::unique_ptr<XMatrixStore> first = make_store(xm, backend);
    SCOPED_TRACE(first->backend_name());
    PartitionEngine probe(*first, cfg);
    const std::size_t total_rounds = probe.run().partitions.size() - 1;

    for (std::size_t k = 1; k <= total_rounds; ++k) {
      PartitionEngine interrupted(*first, cfg);
      std::size_t accepted = 0;
      while (accepted < k && !interrupted.finished()) {
        if (interrupted.step() == PartitionEngine::StepOutcome::kSplit) {
          ++accepted;
        }
      }
      ASSERT_EQ(accepted, k);

      ServiceCheckpoint ckpt;
      ckpt.geometry = first->geometry();
      ckpt.num_patterns = first->num_patterns();
      ckpt.total_x = first->total_x();
      ckpt.config = cfg;
      ckpt.backend = first->backend_name();
      ckpt.snapshot = interrupted.snapshot();
      const std::optional<ServiceCheckpoint> restored =
          checkpoint_from_string(checkpoint_to_string(ckpt));
      ASSERT_TRUE(restored.has_value());
      EXPECT_EQ(restored->backend, first->backend_name());

      // The "next incarnation": a brand-new store of the same backend.
      const std::unique_ptr<XMatrixStore> second = make_store(xm, backend);
      std::string why;
      ASSERT_TRUE(checkpoint_matches(
          *restored, second->geometry(), second->num_patterns(),
          second->total_x(), cfg, second->backend_name(),
          kernels::active().name, &why))
          << why;
      PartitionEngine resumed(*second, restored->config, restored->snapshot);
      expect_identical(oracle, resumed.run(),
                       "boundary " + std::to_string(k));
    }
  }
}

// Service-level incarnation hop per backend: incarnation one leaves a
// checkpoint, incarnation two (configured for the same backend) resumes it
// and lands on the uninterrupted bits.
TEST(CrossBackend, ServiceResumesEachBackendAcrossIncarnations) {
  const fs::path dir = fresh_dir("xh_xbackend_svc");
  Rng rng(616161);
  const auto xm = std::make_shared<const XMatrix>(random_matrix(rng));
  PartitionerConfig cfg;
  cfg.misr = {16, 4};
  cfg.seed = 7;
  const PartitionResult oracle = partition_patterns_reference(*xm, cfg);

  for (const XmBackend backend : kAllBackends) {
    const std::unique_ptr<XMatrixStore> store = make_store(*xm, backend);
    SCOPED_TRACE(store->backend_name());
    const std::string name = std::string("tenant-") + store->backend_name();

    PartitionEngine interrupted(*store, cfg);
    std::size_t accepted = 0;
    while (accepted < 1 && !interrupted.finished()) {
      if (interrupted.step() == PartitionEngine::StepOutcome::kSplit) {
        ++accepted;
      }
    }
    ASSERT_EQ(accepted, 1u);
    ServiceCheckpoint ckpt;
    ckpt.geometry = store->geometry();
    ckpt.num_patterns = store->num_patterns();
    ckpt.total_x = store->total_x();
    ckpt.config = cfg;
    ckpt.backend = store->backend_name();
    ckpt.snapshot = interrupted.snapshot();
    ASSERT_TRUE(save_checkpoint(ckpt, (dir / (name + ".ckpt")).string()));

    ServiceConfig service_cfg;
    service_cfg.workers = 1;
    service_cfg.checkpoint_dir = dir.string();
    service_cfg.checkpoint_every_rounds = 1;
    service_cfg.xm_backend = backend;
    PartitionService service(service_cfg);
    JobSpec spec;
    spec.name = name;
    spec.matrix = xm;
    spec.config = cfg;
    spec.xm_backend = backend;
    const SubmitOutcome outcome = service.submit(std::move(spec));
    ASSERT_TRUE(outcome.accepted);
    const JobResult result = service.wait(outcome.id);
    EXPECT_EQ(result.state, JobState::kCompleted);
    EXPECT_TRUE(result.resumed_from_checkpoint);
    expect_identical(oracle, result.partition, "service " + name);
  }
}

// Switching the backend between incarnations must refuse the resume (the
// checkpoint records its store identity) and rerun fresh — still to the
// oracle's bits, with the refusal reported.
TEST(CrossBackend, BackendSwitchRefusesTheCheckpointAndRerunsFresh) {
  const fs::path dir = fresh_dir("xh_xbackend_switch");
  Rng rng(717171);
  const auto xm = std::make_shared<const XMatrix>(random_matrix(rng));
  PartitionerConfig cfg;
  cfg.misr = {16, 4};
  cfg.seed = 7;
  const PartitionResult oracle = partition_patterns_reference(*xm, cfg);

  // Incarnation one ran csr and left a checkpoint...
  const std::unique_ptr<XMatrixStore> store = make_store(*xm, XmBackend::kCsr);
  PartitionEngine interrupted(*store, cfg);
  std::size_t accepted = 0;
  while (accepted < 1 && !interrupted.finished()) {
    if (interrupted.step() == PartitionEngine::StepOutcome::kSplit) ++accepted;
  }
  ASSERT_EQ(accepted, 1u);
  ServiceCheckpoint ckpt;
  ckpt.geometry = store->geometry();
  ckpt.num_patterns = store->num_patterns();
  ckpt.total_x = store->total_x();
  ckpt.config = cfg;
  ckpt.backend = store->backend_name();
  ckpt.snapshot = interrupted.snapshot();
  ASSERT_TRUE(save_checkpoint(ckpt, (dir / "tenant-switch.ckpt").string()));

  // ...incarnation two runs tebm: same bits, but via a fresh full run.
  ServiceConfig service_cfg;
  service_cfg.workers = 1;
  service_cfg.checkpoint_dir = dir.string();
  service_cfg.checkpoint_every_rounds = 1;
  PartitionService service(service_cfg);
  JobSpec spec;
  spec.name = "tenant-switch";
  spec.matrix = xm;
  spec.config = cfg;
  spec.xm_backend = XmBackend::kTebm;
  const SubmitOutcome outcome = service.submit(std::move(spec));
  ASSERT_TRUE(outcome.accepted);
  const JobResult result = service.wait(outcome.id);
  EXPECT_EQ(result.state, JobState::kCompleted);
  EXPECT_FALSE(result.resumed_from_checkpoint);
  EXPECT_GT(result.diagnostics.count(DiagKind::kCheckpointCorrupt), 0u)
      << "the backend switch must be reported, not silent";
  expect_identical(oracle, result.partition, "fresh after switch");
}

}  // namespace
}  // namespace xh
