// Seeds XH-IPA-002: pump() has a CancelToken in scope, yet the callable
// it posts sleeps and never consults any token — shutdown cannot
// interrupt the posted work.
#include "service/ipa_seam.hpp"

namespace fixture {

void pump_uncancellable(WorkPool& pool, const CancelToken& token) {
  if (token.stop_requested()) return;
  pool.post([] { sleep_ns(2000); });
}

}  // namespace fixture
