#include "core/paper_example.hpp"

#include "util/rng.hpp"

namespace xh {
namespace {

/// X locations, 0-indexed patterns (paper pattern Pk → index k-1).
struct CellXs {
  std::size_t cell;
  std::initializer_list<std::size_t> patterns;
};

const CellXs kFigure4[] = {
    {PaperExampleCells::sc1_c0, {0, 3, 4, 5}},           // P1 P4 P5 P6
    {PaperExampleCells::sc2_c0, {0, 3, 4, 5}},
    {PaperExampleCells::sc2_c2, {0, 3}},                 // P1 P4
    {PaperExampleCells::sc3_c0, {0, 3, 4, 5}},
    {PaperExampleCells::sc4_c2, {0, 1, 2, 3, 4, 6, 7}},  // all but P6
    {PaperExampleCells::sc5_c1, {0, 1, 3, 4, 6, 7}},     // all but P3, P6
    {PaperExampleCells::sc5_c2, {5}},                    // P6
};

}  // namespace

ScanGeometry paper_example_geometry() { return {5, 3}; }

XMatrix paper_example_x_matrix() {
  XMatrix xm(paper_example_geometry(), 8);
  for (const auto& entry : kFigure4) {
    for (const std::size_t p : entry.patterns) xm.add_x(entry.cell, p);
  }
  return xm;
}

ResponseMatrix paper_example_response(std::uint64_t seed) {
  const XMatrix xm = paper_example_x_matrix();
  ResponseMatrix response(paper_example_geometry(), 8);
  Rng rng(seed);
  for (std::size_t p = 0; p < 8; ++p) {
    for (std::size_t c = 0; c < response.num_cells(); ++c) {
      response.set(p, c,
                   xm.is_x(c, p) ? Lv::kX
                                 : (rng.chance(0.5) ? Lv::k1 : Lv::k0));
    }
  }
  return response;
}

}  // namespace xh
