#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace xh {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeRejectsInverted) {
  Rng rng(1);
  EXPECT_THROW(rng.range(3, -3), std::invalid_argument);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, GaussianMoments) {
  Rng rng(19);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinctSortedInRange) {
  Rng rng(29);
  for (int iter = 0; iter < 20; ++iter) {
    const auto picked = rng.sample_without_replacement(100, 20);
    ASSERT_EQ(picked.size(), 20u);
    EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
    std::set<std::size_t> uniq(picked.begin(), picked.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (const auto p : picked) EXPECT_LT(p, 100u);
  }
}

TEST(Rng, SampleAllElements) {
  Rng rng(31);
  const auto picked = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(picked.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(picked[i], i);
}

TEST(Rng, SampleMoreThanPopulationThrows) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

}  // namespace
}  // namespace xh
