#include "response/response_matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xh {
namespace {

TEST(ScanGeometry, CellIndexingRoundTrip) {
  const ScanGeometry geo{4, 10};
  EXPECT_EQ(geo.num_cells(), 40u);
  for (std::size_t chain = 0; chain < 4; ++chain) {
    for (std::size_t pos = 0; pos < 10; ++pos) {
      const std::size_t cell = geo.cell_index(chain, pos);
      EXPECT_EQ(geo.chain_of(cell), chain);
      EXPECT_EQ(geo.position_of(cell), pos);
    }
  }
}

TEST(ScanGeometry, BoundsChecked) {
  const ScanGeometry geo{4, 10};
  EXPECT_THROW(geo.cell_index(4, 0), std::invalid_argument);
  EXPECT_THROW(geo.cell_index(0, 10), std::invalid_argument);
  EXPECT_THROW(geo.chain_of(40), std::invalid_argument);
}

TEST(ResponseMatrix, SetGetAllValues) {
  ResponseMatrix m({2, 3}, 4);
  m.set(0, 0, Lv::k1);
  m.set(0, 1, Lv::k0);
  m.set(1, 2, Lv::kX);
  EXPECT_EQ(m.get(0, 0), Lv::k1);
  EXPECT_EQ(m.get(0, 1), Lv::k0);
  EXPECT_EQ(m.get(1, 2), Lv::kX);
  EXPECT_EQ(m.get(3, 5), Lv::k0) << "default is deterministic 0";
}

TEST(ResponseMatrix, ZRejected) {
  ResponseMatrix m({2, 3}, 1);
  EXPECT_THROW(m.set(0, 0, Lv::kZ), std::invalid_argument);
}

TEST(ResponseMatrix, OverwritingXWithValueClearsX) {
  ResponseMatrix m({1, 2}, 1);
  m.set(0, 0, Lv::kX);
  EXPECT_TRUE(m.is_x(0, 0));
  m.set(0, 0, Lv::k1);
  EXPECT_FALSE(m.is_x(0, 0));
  EXPECT_EQ(m.get(0, 0), Lv::k1);
}

TEST(ResponseMatrix, TotalAndPerPatternXCounts) {
  ResponseMatrix m({2, 2}, 3);
  m.set(0, 0, Lv::kX);
  m.set(0, 3, Lv::kX);
  m.set(2, 1, Lv::kX);
  EXPECT_EQ(m.total_x(), 3u);
  EXPECT_EQ(m.pattern_x_count(0), 2u);
  EXPECT_EQ(m.pattern_x_count(1), 0u);
  EXPECT_EQ(m.pattern_x_count(2), 1u);
  EXPECT_DOUBLE_EQ(m.x_density(), 3.0 / 12.0);
}

TEST(ResponseMatrix, FromStringsAndRowString) {
  const ResponseMatrix m =
      ResponseMatrix::from_strings({2, 3}, {"01X10X", "111000"});
  EXPECT_EQ(m.num_patterns(), 2u);
  EXPECT_EQ(m.row_string(0), "01X10X");
  EXPECT_EQ(m.row_string(1), "111000");
  EXPECT_EQ(m.get(0, 2), Lv::kX);
}

TEST(ResponseMatrix, FromStringsRejectsBadWidth) {
  EXPECT_THROW(ResponseMatrix::from_strings({2, 3}, {"01X"}),
               std::invalid_argument);
}

TEST(ResponseMatrix, XRowAndValueRow) {
  const ResponseMatrix m = ResponseMatrix::from_strings({1, 4}, {"1X01"});
  EXPECT_EQ(m.x_row(0).to_string(), "0100");
  EXPECT_EQ(m.value_row(0).to_string(), "1001");
}

TEST(ResponseMatrix, BoundsChecked) {
  ResponseMatrix m({1, 2}, 2);
  EXPECT_THROW(m.get(2, 0), std::invalid_argument);
  EXPECT_THROW(m.get(0, 2), std::invalid_argument);
  EXPECT_THROW(m.set(0, 9, Lv::k0), std::invalid_argument);
}

}  // namespace
}  // namespace xh
