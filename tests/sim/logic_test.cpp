#include "sim/logic.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace xh {
namespace {

const std::vector<Lv> kAll = {Lv::k0, Lv::k1, Lv::kX, Lv::kZ};

TEST(Logic, CharRoundTrip) {
  for (const Lv v : kAll) {
    EXPECT_EQ(lv_from_char(to_char(v)), v);
  }
  EXPECT_EQ(lv_from_char('x'), Lv::kX);
  EXPECT_EQ(lv_from_char('z'), Lv::kZ);
  EXPECT_THROW(lv_from_char('q'), std::invalid_argument);
}

TEST(Logic, Definiteness) {
  EXPECT_TRUE(is_definite(Lv::k0));
  EXPECT_TRUE(is_definite(Lv::k1));
  EXPECT_FALSE(is_definite(Lv::kX));
  EXPECT_FALSE(is_definite(Lv::kZ));
}

TEST(Logic, NotTruthTable) {
  EXPECT_EQ(lv_not(Lv::k0), Lv::k1);
  EXPECT_EQ(lv_not(Lv::k1), Lv::k0);
  EXPECT_EQ(lv_not(Lv::kX), Lv::kX);
  EXPECT_EQ(lv_not(Lv::kZ), Lv::kX);
}

TEST(Logic, AndTruthTable) {
  // Controlling 0 dominates even X/Z.
  for (const Lv v : kAll) {
    EXPECT_EQ(lv_and(Lv::k0, v), Lv::k0);
    EXPECT_EQ(lv_and(v, Lv::k0), Lv::k0);
  }
  EXPECT_EQ(lv_and(Lv::k1, Lv::k1), Lv::k1);
  EXPECT_EQ(lv_and(Lv::k1, Lv::kX), Lv::kX);
  EXPECT_EQ(lv_and(Lv::kX, Lv::kX), Lv::kX);
  EXPECT_EQ(lv_and(Lv::k1, Lv::kZ), Lv::kX);
}

TEST(Logic, OrTruthTable) {
  for (const Lv v : kAll) {
    EXPECT_EQ(lv_or(Lv::k1, v), Lv::k1);
    EXPECT_EQ(lv_or(v, Lv::k1), Lv::k1);
  }
  EXPECT_EQ(lv_or(Lv::k0, Lv::k0), Lv::k0);
  EXPECT_EQ(lv_or(Lv::k0, Lv::kX), Lv::kX);
  EXPECT_EQ(lv_or(Lv::kZ, Lv::k0), Lv::kX);
}

TEST(Logic, XorTruthTable) {
  EXPECT_EQ(lv_xor(Lv::k0, Lv::k0), Lv::k0);
  EXPECT_EQ(lv_xor(Lv::k0, Lv::k1), Lv::k1);
  EXPECT_EQ(lv_xor(Lv::k1, Lv::k0), Lv::k1);
  EXPECT_EQ(lv_xor(Lv::k1, Lv::k1), Lv::k0);
  // X poisons XOR regardless of the other side (no controlling value).
  for (const Lv v : kAll) {
    EXPECT_EQ(lv_xor(Lv::kX, v), Lv::kX);
    EXPECT_EQ(lv_xor(v, Lv::kZ), Lv::kX);
  }
}

TEST(Logic, DeMorganHoldsInThreeValuedAlgebra) {
  for (const Lv a : kAll) {
    for (const Lv b : kAll) {
      EXPECT_EQ(lv_not(lv_and(a, b)), lv_or(lv_not(a), lv_not(b)));
      EXPECT_EQ(lv_not(lv_or(a, b)), lv_and(lv_not(a), lv_not(b)));
    }
  }
}

TEST(Logic, AndOrCommutative) {
  for (const Lv a : kAll) {
    for (const Lv b : kAll) {
      EXPECT_EQ(lv_and(a, b), lv_and(b, a));
      EXPECT_EQ(lv_or(a, b), lv_or(b, a));
      EXPECT_EQ(lv_xor(a, b), lv_xor(b, a));
    }
  }
}

TEST(Logic, MuxSelectDefinite) {
  EXPECT_EQ(lv_mux(Lv::k0, Lv::k1, Lv::k0), Lv::k1);
  EXPECT_EQ(lv_mux(Lv::k1, Lv::k1, Lv::k0), Lv::k0);
  EXPECT_EQ(lv_mux(Lv::k0, Lv::kX, Lv::k0), Lv::kX);
}

TEST(Logic, MuxSelectUnknownAgreementPassesThrough) {
  EXPECT_EQ(lv_mux(Lv::kX, Lv::k1, Lv::k1), Lv::k1);
  EXPECT_EQ(lv_mux(Lv::kX, Lv::k0, Lv::k0), Lv::k0);
  EXPECT_EQ(lv_mux(Lv::kX, Lv::k0, Lv::k1), Lv::kX);
  EXPECT_EQ(lv_mux(Lv::kZ, Lv::kX, Lv::kX), Lv::kX);
}

TEST(Logic, TristateTruthTable) {
  EXPECT_EQ(lv_tristate(Lv::k0, Lv::k1), Lv::kZ);
  EXPECT_EQ(lv_tristate(Lv::k0, Lv::kX), Lv::kZ);
  EXPECT_EQ(lv_tristate(Lv::k1, Lv::k1), Lv::k1);
  EXPECT_EQ(lv_tristate(Lv::k1, Lv::k0), Lv::k0);
  EXPECT_EQ(lv_tristate(Lv::k1, Lv::kZ), Lv::kX);
  EXPECT_EQ(lv_tristate(Lv::kX, Lv::k1), Lv::kX);
  EXPECT_EQ(lv_tristate(Lv::kZ, Lv::k0), Lv::kX);
}

TEST(Logic, PessimismNeverInventsDefiniteness) {
  // If an operand is unknown and could flip the output, the result must be X.
  // AND: X only matters when no 0 is present — covered above; spot-check the
  // full cross product for the invariant "definite result implies the result
  // is forced for every substitution of X/Z by 0 or 1".
  const auto check_forced = [](Lv (*op)(Lv, Lv), Lv a, Lv b) {
    const Lv r = op(a, b);
    if (!is_definite(r)) return;
    const std::vector<Lv> subs = {Lv::k0, Lv::k1};
    for (const Lv sa : is_definite(a) ? std::vector<Lv>{a} : subs) {
      for (const Lv sb : is_definite(b) ? std::vector<Lv>{b} : subs) {
        EXPECT_EQ(op(sa, sb), r)
            << "op(" << to_char(a) << ',' << to_char(b)
            << ") claimed definite " << to_char(r);
      }
    }
  };
  for (const Lv a : kAll) {
    for (const Lv b : kAll) {
      check_forced(lv_and, a, b);
      check_forced(lv_or, a, b);
      check_forced(lv_xor, a, b);
    }
  }
}

}  // namespace
}  // namespace xh
