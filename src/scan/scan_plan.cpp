#include "scan/scan_plan.hpp"

#include "util/check.hpp"

namespace xh {

ScanPlan ScanPlan::build(const Netlist& nl, std::size_t num_chains) {
  XH_REQUIRE(nl.finalized(), "scan planning requires a finalized netlist");
  XH_REQUIRE(num_chains >= 1, "need at least one scan chain");
  const std::vector<GateId> dffs = nl.scan_dffs();
  XH_REQUIRE(!dffs.empty(), "netlist has no scanned DFFs");

  ScanPlan plan;
  plan.geometry_.num_chains = num_chains;
  plan.geometry_.chain_length = (dffs.size() + num_chains - 1) / num_chains;
  plan.cell_to_dff_.assign(plan.geometry_.num_cells(), kNoGate);
  plan.dff_to_cell_.assign(nl.gate_count(),
                           std::numeric_limits<std::size_t>::max());

  // Round-robin: DFF k → chain k % C, position k / C. This interleaves
  // neighbouring flops across chains, the common stitching for balanced
  // chains.
  for (std::size_t k = 0; k < dffs.size(); ++k) {
    const std::size_t chain = k % num_chains;
    const std::size_t pos = k / num_chains;
    const std::size_t cell = plan.geometry_.cell_index(chain, pos);
    plan.cell_to_dff_[cell] = dffs[k];
    plan.dff_to_cell_[dffs[k]] = cell;
  }
  plan.dff_of_cell_count_ = dffs.size();
  return plan;
}

GateId ScanPlan::dff_at(std::size_t cell) const {
  XH_REQUIRE(cell < cell_to_dff_.size(), "cell index out of range");
  return cell_to_dff_[cell];
}

std::size_t ScanPlan::cell_of(GateId dff) const {
  XH_REQUIRE(dff < dff_to_cell_.size(), "gate id out of range");
  const std::size_t cell = dff_to_cell_[dff];
  XH_REQUIRE(cell != std::numeric_limits<std::size_t>::max(),
             "gate is not a planned scan cell");
  return cell;
}

}  // namespace xh
