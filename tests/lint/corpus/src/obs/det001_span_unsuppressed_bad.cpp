// corpus: the same scoped-timer clock read WITHOUT the suppression comment
// must fire XH-DET-001 — src/obs/ gets no blanket exemption; every clock
// read there needs its own output-independence proof.
#include <chrono>
#include <cstdint>

std::uint64_t span_elapsed_ns(std::uint64_t start_ns) {
  const auto now = std::chrono::steady_clock::now();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      now.time_since_epoch())
                      .count();
  return static_cast<std::uint64_t>(ns) - start_ns;
}
