#include "response/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace xh {
namespace {

[[noreturn]] void format_error(const std::string& what) {
  throw std::invalid_argument("response io: " + what);
}

ScanGeometry read_header(std::istream& in, const char* magic,
                         std::size_t& num_patterns) {
  std::string word;
  std::string version;
  ScanGeometry geo;
  if (!(in >> word >> version >> geo.num_chains >> geo.chain_length >>
        num_patterns)) {
    format_error("truncated header");
  }
  if (word != magic) format_error("expected '" + std::string(magic) + "'");
  if (version != "v1") format_error("unsupported version " + version);
  if (geo.num_chains == 0 || geo.chain_length == 0 || num_patterns == 0) {
    format_error("degenerate geometry");
  }
  return geo;
}

}  // namespace

void write_x_matrix(const XMatrix& xm, std::ostream& out) {
  out << "xmatrix v1 " << xm.geometry().num_chains << ' '
      << xm.geometry().chain_length << ' ' << xm.num_patterns() << '\n';
  for (const std::size_t cell : xm.x_cells()) {
    out << cell;
    for (const std::size_t p : xm.patterns_of(cell).set_bits()) {
      out << ' ' << p;
    }
    out << '\n';
  }
}

XMatrix read_x_matrix(std::istream& in) {
  std::size_t num_patterns = 0;
  const ScanGeometry geo = read_header(in, "xmatrix", num_patterns);
  XMatrix xm(geo, num_patterns);
  std::string line;
  std::getline(in, line);  // finish the header line
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::size_t cell = 0;
    if (!(row >> cell)) format_error("malformed cell line: " + line);
    std::size_t pattern = 0;
    bool any = false;
    while (row >> pattern) {
      xm.add_x(cell, pattern);  // bounds-checked by XMatrix
      any = true;
    }
    if (!any) format_error("cell with no patterns: " + line);
    if (!row.eof()) format_error("trailing garbage: " + line);
  }
  return xm;
}

void write_response(const ResponseMatrix& rm, std::ostream& out) {
  out << "response v1 " << rm.geometry().num_chains << ' '
      << rm.geometry().chain_length << ' ' << rm.num_patterns() << '\n';
  for (std::size_t p = 0; p < rm.num_patterns(); ++p) {
    out << rm.row_string(p) << '\n';
  }
}

ResponseMatrix read_response(std::istream& in) {
  std::size_t num_patterns = 0;
  const ScanGeometry geo = read_header(in, "response", num_patterns);
  ResponseMatrix rm(geo, num_patterns);
  std::string line;
  std::getline(in, line);
  for (std::size_t p = 0; p < num_patterns; ++p) {
    if (!std::getline(in, line)) format_error("missing pattern row");
    if (line.size() != geo.num_cells()) {
      format_error("row width mismatch at pattern " + std::to_string(p));
    }
    for (std::size_t c = 0; c < line.size(); ++c) {
      rm.set(p, c, lv_from_char(line[c]));  // throws on bad characters
    }
  }
  return rm;
}

std::string x_matrix_to_string(const XMatrix& xm) {
  std::ostringstream os;
  write_x_matrix(xm, os);
  return os.str();
}

XMatrix x_matrix_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_x_matrix(is);
}

std::string response_to_string(const ResponseMatrix& rm) {
  std::ostringstream os;
  write_response(rm, os);
  return os.str();
}

ResponseMatrix response_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_response(is);
}

}  // namespace xh
