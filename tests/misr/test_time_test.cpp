// Tests for the measured (simulated) test-time model and its convergence to
// the paper's closed-form equation, plus the shadow-register cost model.
#include <gtest/gtest.h>

#include "misr/accounting.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

TEST(MeasuredTestTime, NoStopsMeansNoOverhead) {
  XCancelResult r;
  r.shift_cycles = 1000;
  r.stops = 0;
  EXPECT_DOUBLE_EQ(measured_normalized_test_time(r, {32, 7}), 1.0);
}

TEST(MeasuredTestTime, EachStopCostsQCycles) {
  XCancelResult r;
  r.shift_cycles = 100;
  r.stops = 5;
  EXPECT_DOUBLE_EQ(measured_normalized_test_time(r, {16, 4}),
                   1.0 + 5.0 * 4.0 / 100.0);
}

TEST(MeasuredTestTime, ZeroCyclesRejected) {
  XCancelResult r;
  EXPECT_THROW((void)measured_normalized_test_time(r, {16, 4}),
               std::invalid_argument);
}

TEST(MeasuredTestTime, ConvergesToClosedFormOnUniformStream) {
  // Closed form: T = 1 + n·x·q/(m−q) assumes one MISR input per chain
  // (n == m) and a uniform X stream. Simulate exactly that and compare.
  const MisrConfig cfg{16, 4};
  Rng rng(11);
  XCancelSession session(cfg);
  const double density = 0.02;
  std::size_t cycles = 20000;
  for (std::size_t c = 0; c < cycles; ++c) {
    std::vector<Lv> slice(cfg.size, Lv::k0);
    for (auto& v : slice) {
      if (rng.chance(density)) {
        v = Lv::kX;
      } else if (rng.chance(0.5)) {
        v = Lv::k1;
      }
    }
    session.shift(slice);
  }
  const XCancelResult& r = session.finish();
  const double measured = measured_normalized_test_time(r, cfg);
  const double closed = normalized_test_time(cfg.size, density, cfg);
  EXPECT_NEAR(measured, closed, 0.01 * closed);
}

TEST(ShadowRegister, NoTimeOverheadButChannelCost) {
  const ShadowRegisterCost c =
      shadow_register_cost({32, 7}, /*total_x=*/100000,
                           /*shift_cycles=*/200000);
  EXPECT_DOUBLE_EQ(c.normalized_test_time, 1.0);
  // 8.96 bits/X * 100k X / 200k cycles = 4.48 bits/cycle.
  EXPECT_NEAR(c.control_bits_per_cycle, 4.48, 1e-9);
  EXPECT_EQ(c.extra_channels, 5u);
}

TEST(ShadowRegister, ChannelCostScalesWithDensity) {
  const ShadowRegisterCost lo =
      shadow_register_cost({32, 7}, 1000, 1000000);
  const ShadowRegisterCost hi =
      shadow_register_cost({32, 7}, 100000, 1000000);
  EXPECT_LT(lo.control_bits_per_cycle, hi.control_bits_per_cycle);
  EXPECT_DOUBLE_EQ(lo.normalized_test_time, hi.normalized_test_time);
}

TEST(ShadowRegister, RejectsZeroCycles) {
  EXPECT_THROW((void)shadow_register_cost({32, 7}, 10, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace xh
