#include "engine/pipeline.hpp"

namespace xh {

XCancelResult run_x_canceling(const ResponseMatrix& response,
                              PipelineContext& ctx) {
  return run_x_canceling(response, ctx.misr(), ctx.collector(), ctx.trace());
}

std::uint64_t count_mask_violations(const ResponseMatrix& response,
                                    const std::vector<BitVec>& partitions,
                                    const std::vector<BitVec>& masks,
                                    PipelineContext& ctx) {
  return count_mask_violations(response, partitions, masks, ctx.collector(),
                               ctx.trace());
}

XMatrix read_x_matrix(std::istream& in, PipelineContext& ctx) {
  return read_x_matrix(in, ctx.collector(), ctx.trace());
}

ResponseMatrix read_response(std::istream& in, PipelineContext& ctx) {
  return read_response(in, ctx.collector(), ctx.trace());
}

}  // namespace xh
