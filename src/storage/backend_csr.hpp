// CSR snapshot backend: the default XMatrixStore (DESIGN.md §12).
//
// This is the original engine-layer XMatrixView moved behind the storage
// interface, byte for byte in behavior: one heap-allocated BitVec per cell
// in the source XMatrix is frozen into CSR-style contiguous storage,
//
//   cells_   [r]                      cell id of row r (ascending)
//   counts_  [r]                      popcount of row r (precomputed)
//   words_   [r*W .. r*W + W)         row r's pattern-membership words
//
// so a sweep over rows walks one linear array instead of chasing pointers
// through hash buckets, and per-cell X counts cost nothing. The store is an
// immutable value: concurrent readers need no synchronization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "response/geometry.hpp"
#include "response/x_matrix.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/bitvec.hpp"

namespace xh {

class CsrStore final : public XMatrixStore {
 public:
  /// Snapshots @p xm. O(x_cells × pattern words); the source matrix can be
  /// discarded or mutated afterwards without affecting the store.
  explicit CsrStore(const XMatrix& xm);

  const char* backend_name() const override { return "csr"; }
  const ScanGeometry& geometry() const override { return geometry_; }
  std::size_t num_patterns() const override { return num_patterns_; }
  std::uint64_t total_x() const override { return total_x_; }

  std::size_t num_rows() const override { return cells_.size(); }
  std::size_t cell_id(std::size_t row) const override { return cells_[row]; }
  std::size_t x_count(std::size_t row) const override { return counts_[row]; }

  std::size_t count_in(std::size_t row,
                       const BitVec& patterns) const override;
  std::uint64_t hash_in(std::size_t row,
                        const BitVec& patterns) const override;
  void intersect_into(std::size_t row, const BitVec& patterns,
                      BitVec* out) const override;

  // CSR-specific extras (word-level tests and the mmap builder reuse the
  // exact snapshot layout).
  std::size_t words_per_row() const { return words_per_row_; }
  const std::uint64_t* row_words(std::size_t row) const {
    return words_.data() + row * words_per_row_;
  }

 protected:
  std::uint64_t resident_bytes() const override;

 private:
  ScanGeometry geometry_;
  std::size_t num_patterns_ = 0;
  std::size_t words_per_row_ = 0;
  std::uint64_t total_x_ = 0;
  std::vector<std::size_t> cells_;
  std::vector<std::size_t> counts_;
  std::vector<std::uint64_t> words_;
};

}  // namespace xh
