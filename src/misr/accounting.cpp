#include "misr/accounting.hpp"

#include <cmath>

#include "util/check.hpp"

namespace xh {

std::uint64_t x_masking_only_bits(const ScanGeometry& geometry,
                                  std::size_t num_patterns) {
  XH_REQUIRE(num_patterns > 0, "need at least one pattern");
  return static_cast<std::uint64_t>(geometry.chain_length) *
         geometry.num_chains * num_patterns;
}

double x_canceling_only_bits(const MisrConfig& cfg, std::uint64_t total_x) {
  cfg.validate();
  return static_cast<double>(cfg.size) * static_cast<double>(cfg.q) *
         static_cast<double>(total_x) /
         static_cast<double>(cfg.size - cfg.q);
}

double x_canceling_stops(const MisrConfig& cfg, std::uint64_t total_x) {
  cfg.validate();
  return static_cast<double>(total_x) / static_cast<double>(cfg.size - cfg.q);
}

double hybrid_bits(const ScanGeometry& geometry, std::size_t num_partitions,
                   const MisrConfig& cfg, std::uint64_t leaked_x) {
  XH_REQUIRE(num_partitions > 0, "need at least one partition");
  const double mask_bits =
      static_cast<double>(geometry.chain_length) *
      static_cast<double>(geometry.num_chains) *
      static_cast<double>(num_partitions);
  return mask_bits + x_canceling_only_bits(cfg, leaked_x);
}

std::uint64_t round_bits(double bits) {
  XH_REQUIRE(bits >= 0.0, "bit counts cannot be negative");
  return static_cast<std::uint64_t>(std::ceil(bits));
}

double normalized_test_time(std::size_t num_chains, double x_density,
                            const MisrConfig& cfg) {
  cfg.validate();
  XH_REQUIRE(x_density >= 0.0 && x_density <= 1.0,
             "x_density is a fraction in [0,1]");
  return 1.0 + static_cast<double>(num_chains) * x_density *
                   static_cast<double>(cfg.q) /
                   static_cast<double>(cfg.size - cfg.q);
}

double measured_normalized_test_time(const XCancelResult& result,
                                     const MisrConfig& cfg) {
  cfg.validate();
  XH_REQUIRE(result.shift_cycles > 0, "session shifted no cycles");
  return 1.0 + static_cast<double>(result.stops) *
                   static_cast<double>(cfg.q) /
                   static_cast<double>(result.shift_cycles);
}

ShadowRegisterCost shadow_register_cost(const MisrConfig& cfg,
                                        std::uint64_t total_x,
                                        std::uint64_t shift_cycles) {
  cfg.validate();
  XH_REQUIRE(shift_cycles > 0, "need a positive cycle count");
  ShadowRegisterCost cost;
  cost.control_bits_per_cycle =
      x_canceling_only_bits(cfg, total_x) / static_cast<double>(shift_cycles);
  cost.extra_channels =
      static_cast<std::size_t>(std::ceil(cost.control_bits_per_cycle));
  return cost;
}

}  // namespace xh
