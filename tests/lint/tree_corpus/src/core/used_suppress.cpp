#include <cstdlib>

namespace fixture {

int noisy() {
  return rand();  // xh-lint: allow(XH-DET-001)
}

}  // namespace fixture
