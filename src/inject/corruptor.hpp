// Deterministic fault-injection engine for robustness testing (DESIGN.md §7).
//
// Every corruption is driven by a seeded Rng, so a failing robustness test
// reproduces from its seed alone. The engine attacks the pipeline at three
// levels:
//   * response level — flip deterministic cells to X (undeclared X's) or
//     resolve declared X's to concrete values, modelling the gap between
//     pre-silicon X prediction and what silicon actually returns;
//   * serialization level — truncate, garble or duplicate lines of the
//     plain-text .xm / response / .bench formats, modelling damaged files;
//   * MISR level — concentrate an X burst into a single shift slice so
//     Gaussian extraction starves, or tamper with extracted selection
//     vectors so the X-freeness re-check must catch contamination.
//
// Each mutator returns exactly what it corrupted, so tests can assert the
// pipeline's diagnostics identify every injected fault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "misr/x_cancel.hpp"
#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"
#include "util/rng.hpp"

namespace xh {

/// One corrupted (pattern, cell) coordinate.
struct CellRef {
  std::size_t pattern = 0;
  std::size_t cell = 0;

  bool operator==(const CellRef&) const = default;
};

class Corruptor {
 public:
  explicit Corruptor(std::uint64_t seed) : rng_(seed) {}

  /// Flips @p count deterministic cells of @p response to X. The cells are
  /// chosen uniformly among non-X cells; any declaration derived from the
  /// pre-corruption response now under-reports these X's.
  std::vector<CellRef> add_undeclared_x(ResponseMatrix& response,
                                        std::size_t count);

  /// Resolves @p count X cells of @p response to concrete random values.
  /// A declaration derived from the pre-corruption response now over-reports
  /// X's, and masks derived from it may hide the new observable values.
  std::vector<CellRef> resolve_declared_x(ResponseMatrix& response,
                                          std::size_t count);

  /// Sets X in @p burst_size cells that all shift into the MISR on the SAME
  /// cycle (one scan position, chains 0..burst_size-1 → distinct MISR
  /// stages). With burst_size > m − q the segment overshoots the stop budget
  /// in one step and Gaussian extraction starves at the stop.
  std::vector<CellRef> x_burst(ResponseMatrix& response, const MisrConfig& cfg,
                               std::size_t burst_size);

  /// Keeps only the leading @p keep_fraction of @p text (clamped to [0,1]).
  std::string truncate_text(const std::string& text, double keep_fraction);

  /// Overwrites @p edits random non-newline characters with junk characters
  /// guaranteed to be invalid in every xhybrid text format.
  std::string garble_text(const std::string& text, std::size_t edits);

  /// Duplicates one random interior line (never the first line, so headers
  /// survive and the duplicate hits the record-level checks).
  std::string duplicate_line(const std::string& text);

  /// Returns a hook for XCancelSession::install_combination_tamper that
  /// flips one row of one extracted selection vector per stop, choosing a
  /// row with a nonzero X dependency so the contamination is guaranteed
  /// to be detectable (and must be caught by the X-freeness re-check).
  XCancelSession::CombinationTamper combination_tamper();

 private:
  Rng rng_;
};

}  // namespace xh
