#include "util/check.hpp"

#include <gtest/gtest.h>

namespace xh {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(XH_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsInvalidArgument) {
  try {
    XH_REQUIRE(false, "caller error");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("requirement failed"), std::string::npos);
    EXPECT_NE(what.find("caller error"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos)
        << "message should carry the source location";
  }
}

TEST(Check, AssertThrowsLogicError) {
  try {
    XH_ASSERT(false, "library bug");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("internal invariant failed"), std::string::npos);
    EXPECT_NE(what.find("library bug"), std::string::npos);
  }
}

TEST(Check, RequireAndAssertAreDistinctTypes) {
  // Callers catch invalid_argument for misuse without swallowing logic
  // errors (bugs) — the two must stay distinguishable.
  bool caught_logic = false;
  try {
    XH_ASSERT(false, "");
  } catch (const std::invalid_argument&) {
    FAIL() << "assert must not be invalid_argument";
  } catch (const std::logic_error&) {
    caught_logic = true;
  }
  EXPECT_TRUE(caught_logic);
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  const auto once = [&] {
    ++calls;
    return true;
  };
  XH_REQUIRE(once(), "");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace xh
