// corpus: XH-DET-001 must fire on libc PRNG calls in library code.
#include <cstdlib>

int noise() {
  std::srand(42);
  return std::rand();
}
