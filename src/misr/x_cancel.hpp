// X-canceling MISR session (Yang & Touba [12,13], time-multiplexed variant).
//
// Captured slices stream into the MISR. X values are tracked symbolically;
// whenever the number of distinct X's accumulated since the last stop reaches
// m − q, scan shifting halts, Gaussian elimination finds q X-free
// combinations of the m signature bits, their values are read out, and the
// MISR restarts. Each stop costs m·q control bits from the tester (the q
// selection vectors) and one halt of the scan clock (test-time overhead).
#pragma once

#include <cstddef>
#include <vector>

#include "gf2/lfsr.hpp"
#include "response/response_matrix.hpp"
#include "sim/logic.hpp"
#include "util/bitvec.hpp"

namespace xh {

/// MISR configuration shared by simulation and accounting.
struct MisrConfig {
  std::size_t size = 32;  // m
  std::size_t q = 7;      // X-free combinations extracted per stop

  void validate() const {
    XH_REQUIRE(size >= 2 && size <= 64, "MISR size must be in [2,64]");
    XH_REQUIRE(q >= 1 && q < size, "q must satisfy 1 <= q < m");
  }
};

/// One extracted X-free signature bit.
struct SignatureBit {
  std::size_t stop_index = 0;
  BitVec combination;  // selection over the m MISR bits
  bool value = false;  // the X-canceled observation
};

/// Session outcome.
struct XCancelResult {
  std::size_t stops = 0;
  std::size_t shift_cycles = 0;
  std::size_t total_x_seen = 0;
  /// Shift-cycle index after which each stop occurred (size() == stops);
  /// lets callers replay segmentation and model halt timing.
  std::vector<std::size_t> stop_cycles;
  std::vector<SignatureBit> signature;

  /// Tester data for the selective-XOR network: m·q bits per stop.
  std::size_t control_bits(const MisrConfig& cfg) const {
    return stops * cfg.size * cfg.q;
  }
};

/// Streaming X-canceling MISR simulator.
///
/// Feed captured slices (one Lv per MISR input stage) with shift(); call
/// finish() once at the end to flush the final partial segment. The extracted
/// signature bits are provably X-free: each combination's dependency on every
/// X symbol cancels, which the session asserts internally.
class XCancelSession {
 public:
  explicit XCancelSession(MisrConfig cfg);

  const MisrConfig& config() const { return cfg_; }

  /// One scan shift cycle. @p slice must have cfg.size entries; Z is not a
  /// capturable value.
  void shift(const std::vector<Lv>& slice);

  /// Flushes the trailing segment (extracts final combinations) and returns
  /// the result. The session can keep shifting afterwards only after reset().
  const XCancelResult& finish();

  void reset();

 private:
  void extract(bool final_flush);

  MisrConfig cfg_;
  std::vector<std::size_t> taps_;  // feedback taps, cached for the hot loop
  Lfsr concrete_;                  // X treated as 0 — sound for X-free combos
  std::vector<BitVec> xdep_;      // per MISR bit, over segment X symbols
  std::size_t segment_x_ = 0;     // symbols allocated in current segment
  XCancelResult result_;
  bool finished_ = false;
};

/// Convenience driver: shifts an entire response matrix through an
/// X-canceling MISR. Chains map to MISR stages round-robin
/// (stage = chain mod m, a spatial XOR compactor when chains > m); cells
/// shift out position 0 first.
XCancelResult run_x_canceling(const ResponseMatrix& response, MisrConfig cfg);

}  // namespace xh
