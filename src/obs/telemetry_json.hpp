// Canonical telemetry serialization: the ONE JSON schema every perf- or
// diagnostics-emitting surface (xhybrid_cli --telemetry, bench_partitioner,
// bench_robustness, bench_table1) converges on, instead of each bench
// inventing its own ad-hoc document.
//
// Document shape (versioned; see README "Telemetry" for the field table):
//
//   {
//     "schema": "xh-telemetry/1",
//     "tool": "<producer binary>",
//     "run": { "<key>": "<value>", ... },
//     "counters": { "<name>": <uint64>, ... },
//     "gauges": { "<name>": <double>, ... },
//     "histograms": { "<name>": { "count", "sum", "min", "max",
//                                 "buckets": [[lo, count], ...] }, ... },
//     "timers": { "<span/path>": { "count", "total_ms", "max_ms" }, ... },
//     "diagnostics": { "<kind>": <count>, ... }
//   }
//
// Sections "schema"/"tool"/"run"/"counters"/"gauges"/"histograms" are always
// present; "timers" is omitted when options.include_timers is false (timer
// values are wall-clock noise — golden tests and CI diffs exclude them);
// "diagnostics" is present iff a collector is passed, listing only kinds
// with a non-zero count. All maps are emitted in sorted key order, so two
// runs over the same inputs produce byte-identical documents.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/diagnostics.hpp"

namespace xh {

/// Producer identity and free-form run context (workload name, command,
/// configuration summary — string values only, emitted in the given order).
struct TelemetryMeta {
  std::string tool;
  std::vector<std::pair<std::string, std::string>> run;
};

struct TelemetryJsonOptions {
  /// Timers are wall-clock measurements: exclude them where the document
  /// must be reproducible byte for byte (golden files, CI baselines).
  bool include_timers = true;
};

/// The schema identifier this serializer emits ("xh-telemetry/1").
extern const char* const kTelemetrySchema;

/// The canonical, sorted list of every instrument name (counters, gauges,
/// histograms and span leaf names) the tree may emit. xh_lint rule
/// XH-OBS-001 cross-checks every obs_count/obs_gauge/obs_record/ScopedSpan
/// literal in src/, bench/ and tools/ against this list, so adding an
/// instrument means registering it here first.
const std::vector<std::string>& telemetry_schema_names();

/// Renders the versioned telemetry document.
std::string telemetry_to_json(const Trace& trace, const TelemetryMeta& meta,
                              const Diagnostics* diags = nullptr,
                              const TelemetryJsonOptions& options = {});

/// Stream variant of telemetry_to_json.
void write_telemetry_json(std::ostream& out, const Trace& trace,
                          const TelemetryMeta& meta,
                          const Diagnostics* diags = nullptr,
                          const TelemetryJsonOptions& options = {});

}  // namespace xh
