// Regenerates the Section 4 worked example end to end: the Figure 4
// X-value correlation analysis, the Figure 5 partitioning rounds, the
// Figure 6 per-partition control bits, and both cost-function walk-throughs
// (m=10,q=2 continues to 3 partitions; m=10,q=1 stops at 2).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/paper_example.hpp"
#include "core/partitioner.hpp"
#include "misr/accounting.hpp"
#include "response/x_stats.hpp"
#include "util/table.hpp"

namespace xh {
namespace {

std::string pattern_list(const BitVec& patterns) {
  std::string out = "{";
  bool first = true;
  for (const std::size_t p : patterns.set_bits()) {
    out += (first ? "P" : ",P") + std::to_string(p + 1);
    first = false;
  }
  return out + "}";
}

void print_fig4() {
  const XMatrix xm = paper_example_x_matrix();
  const XStatistics stats = compute_x_statistics(xm);
  std::printf("== Figure 4: X-value correlation analysis ================\n");
  std::printf("8 patterns, 5 chains x 3 cells, %zu X's total (paper: 28)\n",
              stats.total_x);
  TextTable t({"scan cell", "X count", "patterns with X"});
  for (const std::size_t cell : xm.x_cells()) {
    t.add_row({"SC" + std::to_string(cell / 3 + 1) + " cell " +
                   std::to_string(cell % 3 + 1),
               std::to_string(xm.x_count(cell)),
               pattern_list(xm.patterns_of(cell))});
  }
  std::printf("%s", t.render().c_str());
  const XHistogramBucket b = stats.largest_bucket();
  std::printf(
      "largest same-count group: %zu cells with %zu X's each "
      "(paper: 3 cells with 4 X's)\n\n",
      b.num_cells, b.x_count);
}

void print_fig5_fig6(const MisrConfig& misr) {
  PartitionerConfig cfg;
  cfg.misr = misr;
  const XMatrix xm = paper_example_x_matrix();
  const PartitionResult r = partition_patterns(xm, cfg);

  std::printf("== Figure 5 trace (m=%zu, q=%zu) =========================\n",
              misr.size, misr.q);
  for (const auto& h : r.history) {
    if (h.round == 0) {
      std::printf("round 0: no split, %zu partition(s), total bits %.1f\n",
                  h.num_partitions, h.total_bits);
    } else {
      std::printf(
          "round %zu: split on cell %zu -> %zu partitions, masked %llu, "
          "leaked %llu, total bits %.1f (%s)\n",
          h.round, h.split_cell, h.num_partitions,
          static_cast<unsigned long long>(h.masked_x),
          static_cast<unsigned long long>(h.leaked_x), h.total_bits,
          h.accepted ? "accepted" : "REJECTED, stop");
    }
  }

  std::printf("\n== Figure 6: per-partition masks =========================\n");
  for (std::size_t i = 0; i < r.partitions.size(); ++i) {
    std::printf("partition %s masks %zu cell(s): mask = %s\n",
                pattern_list(r.partitions[i]).c_str(), r.masks[i].count(),
                r.masks[i].to_string().c_str());
  }
  std::printf(
      "masking bits: %zu per partition x %zu partitions = %.0f "
      "(conventional X-masking: %llu)\n",
      xm.num_cells(), r.num_partitions(), r.masking_bits,
      static_cast<unsigned long long>(
          x_masking_only_bits(xm.geometry(), xm.num_patterns())));
  std::printf("masked %llu X's, leaked %llu (paper, q=2: 23 and 5)\n",
              static_cast<unsigned long long>(r.masked_x),
              static_cast<unsigned long long>(r.leaked_x));
  std::printf("total control bits: %.1f -> %llu rounded\n\n", r.total_bits,
              static_cast<unsigned long long>(round_bits(r.total_bits)));
}

void BM_WorkedExamplePartitioning(benchmark::State& state) {
  const XMatrix xm = paper_example_x_matrix();
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_patterns(xm, cfg));
  }
}

void BM_WorkedExampleHybridSimulation(benchmark::State& state) {
  const ResponseMatrix response = paper_example_response(1);
  for (auto _ : state) {
    // Full pipeline: analysis + masking + real MISR session.
    PartitionerConfig pcfg;
    pcfg.misr = {10, 2};
    benchmark::DoNotOptimize(
        partition_patterns(XMatrix::from_response(response), pcfg));
  }
}

BENCHMARK(BM_WorkedExamplePartitioning);
BENCHMARK(BM_WorkedExampleHybridSimulation);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::print_fig4();
  xh::print_fig5_fig6({10, 2});
  xh::print_fig5_fig6({10, 1});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
