// XH-RACE-001 non-firing fixture: the callable copies the value it needs,
// so the frame's lifetime is irrelevant.
#include "service/ipa_seam.hpp"

namespace fixture {

void tally_seed(WorkPool& pool, int seed) {
  pool.post([seed] { consume(seed); });
}

}  // namespace fixture
