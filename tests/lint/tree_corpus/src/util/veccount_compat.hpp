#pragma once

#include "util/veccount.hpp"

// Quarantined deprecated spelling, mirroring src/kernels/compat.hpp in the
// real tree: this header exports no types, so WordVec never becomes an
// XH-API-002 marker type — only unqualified straggler calls are flagged.

namespace fixture {

[[deprecated("use fast::vec_count")]]
int vec_count(const WordVec& v);

}  // namespace fixture
