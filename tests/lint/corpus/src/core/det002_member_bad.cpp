// corpus: XH-DET-002 must fire on iteration over a member whose unordered
// type is only visible in the paired header.
#include "det002_member_bad.hpp"

std::vector<std::size_t> CellIndex::cells() const {
  std::vector<std::size_t> out;
  for (const auto& [cell, count] : cells_) out.push_back(cell);
  return out;  // unsorted: hash order leaks to the caller
}
