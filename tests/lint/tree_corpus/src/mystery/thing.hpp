#pragma once

namespace fixture {

struct MysteryThing {
  int level = 0;
};

}  // namespace fixture
