// Tree-encoded bitmap backend: compressed in-RAM XMatrixStore.
//
// Industrial X matrices are sparse (a few percent X density) but the CSR
// snapshot spends a full 64-bit word on every 64 patterns of every row.
// TebmStore instead encodes each row as a forest of small binary trees, one
// tree per kChunkWords-word chunk of the pattern axis (256 patterns — the
// granularity the paper's pattern partitions carve the axis at, so a
// partition-restricted probe touches only the chunks its patterns live in;
// this is the partition-of-tree-masks idiom from the tree-encoded-bitmap
// literature applied to pattern partitions). Each tree node covers a word
// range and is one tag byte:
//
//   0  every word in the range is all-zero   (no payload)
//   1  every word in the range is all-ones   (no payload)
//   2  single literal word                   (one word in the literal pool)
//   3  split: left half then right half follow in pre-order
//
// Tag bytes and literal words live in two shared pools with per-row start
// offsets; decoding walks the row's tags in pre-order with a local cursor,
// so concurrent readers (the engine's thread-pool fan-out) share nothing
// mutable. A fully-zero chunk costs one byte instead of 32; at the 2–5% X
// densities of the workload generator most chunks are exactly that.
//
// Probe semantics are bit-identical to CsrStore: count_in skips zero
// subtrees outright, while hash_in still folds every word through the
// FNV-1a step (a zero word XORs nothing but MUST still multiply, because
// the seed partitioner's set_hash does).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "response/geometry.hpp"
#include "response/x_matrix.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/bitvec.hpp"

namespace xh {

class TebmStore final : public XMatrixStore {
 public:
  /// Words of the pattern axis covered by one top-level tree (256 patterns).
  static constexpr std::size_t kChunkWords = 4;

  /// Freezes and compresses @p xm. O(x_cells × pattern words) once; the
  /// source matrix is independent afterwards.
  explicit TebmStore(const XMatrix& xm);

  const char* backend_name() const override { return "tebm"; }
  const ScanGeometry& geometry() const override { return geometry_; }
  std::size_t num_patterns() const override { return num_patterns_; }
  std::uint64_t total_x() const override { return total_x_; }

  std::size_t num_rows() const override { return cells_.size(); }
  std::size_t cell_id(std::size_t row) const override { return cells_[row]; }
  std::size_t x_count(std::size_t row) const override { return counts_[row]; }

  std::size_t count_in(std::size_t row,
                       const BitVec& patterns) const override;
  std::uint64_t hash_in(std::size_t row,
                        const BitVec& patterns) const override;
  void intersect_into(std::size_t row, const BitVec& patterns,
                      BitVec* out) const override;

  /// Compression diagnostics: encoded bytes (tags + literals) vs the CSR
  /// word payload the same rows would occupy.
  std::uint64_t encoded_bytes() const {
    return static_cast<std::uint64_t>(tags_.size()) +
           static_cast<std::uint64_t>(lits_.size()) * sizeof(std::uint64_t);
  }
  std::uint64_t csr_payload_bytes() const {
    return static_cast<std::uint64_t>(cells_.size()) * words_per_row_ *
           sizeof(std::uint64_t);
  }

 protected:
  std::uint64_t resident_bytes() const override;

 private:
  enum : std::uint8_t { kZero = 0, kOnes = 1, kLiteral = 2, kSplit = 3 };

  /// Pre-order decode cursor over one row's slice of the shared pools.
  struct Cursor {
    const std::uint8_t* tags;
    const std::uint64_t* lits;
    std::size_t t = 0;
    std::size_t l = 0;
  };

  void encode_node(const BitVec& pats, std::size_t lo, std::size_t hi);
  std::size_t count_node(Cursor& cur, std::size_t lo, std::size_t hi,
                         const BitVec& patterns) const;
  void hash_node(Cursor& cur, std::size_t lo, std::size_t hi,
                 const BitVec& patterns, std::uint64_t* h) const;
  void intersect_node(Cursor& cur, std::size_t lo, std::size_t hi,
                      const BitVec& patterns, BitVec* out) const;
  Cursor cursor_for(std::size_t row) const {
    return Cursor{tags_.data() + row_tags_[row], lits_.data() + row_lits_[row]};
  }

  ScanGeometry geometry_;
  std::size_t num_patterns_ = 0;
  std::size_t words_per_row_ = 0;
  std::uint64_t total_x_ = 0;
  std::vector<std::size_t> cells_;
  std::vector<std::size_t> counts_;
  std::vector<std::uint8_t> tags_;    // shared tag pool, rows back to back
  std::vector<std::uint64_t> lits_;   // shared literal-word pool
  std::vector<std::uint64_t> row_tags_;  // per-row start into tags_
  std::vector<std::uint64_t> row_lits_;  // per-row start into lits_
};

}  // namespace xh
