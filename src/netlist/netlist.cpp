#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xh {

std::string_view gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput: return "input";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kNand: return "nand";
    case GateType::kOr: return "or";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    case GateType::kMux: return "mux";
    case GateType::kTristate: return "tristate";
    case GateType::kBus: return "bus";
    case GateType::kDff: return "dff";
  }
  return "?";
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

void Netlist::check_mutable() const {
  XH_REQUIRE(!finalized_, "netlist is finalized and immutable");
}

GateId Netlist::add_node(Gate g) {
  check_mutable();
  XH_REQUIRE(gates_.size() < kNoGate, "netlist too large");
  if (g.name.empty()) {
    g.name = std::string(gate_type_name(g.type)) + "_n" +
             std::to_string(anon_counter_++);
  }
  XH_REQUIRE(by_name_.find(g.name) == by_name_.end(),
             "duplicate gate name: " + g.name);
  const GateId id = static_cast<GateId>(gates_.size());
  for (const GateId f : g.fanin) {
    XH_REQUIRE(f < id, "fanin must reference an already-created gate");
  }
  by_name_.emplace(g.name, id);
  gates_.push_back(std::move(g));
  output_flag_.push_back(false);
  return id;
}

GateId Netlist::add_input(std::string gate_name) {
  Gate g;
  g.type = GateType::kInput;
  g.name = std::move(gate_name);
  const GateId id = add_node(std::move(g));
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_gate(GateType type, std::vector<GateId> fanin,
                         std::string gate_name) {
  XH_REQUIRE(type != GateType::kInput && type != GateType::kDff,
             "use add_input/add_dff for sources");
  XH_REQUIRE(fanin.size() >= min_fanin(type),
             "too few fanins for gate type");
  XH_REQUIRE(variadic_fanin(type) || fanin.size() == min_fanin(type),
             "too many fanins for gate type");
  Gate g;
  g.type = type;
  g.fanin = std::move(fanin);
  g.name = std::move(gate_name);
  return add_node(std::move(g));
}

GateId Netlist::add_dff(GateId d_input, std::string gate_name, bool scanned) {
  XH_REQUIRE(d_input < gates_.size(), "DFF D input does not exist");
  const GateId id = add_dff_placeholder(std::move(gate_name), scanned);
  gates_[id].fanin = {d_input};
  return id;
}

GateId Netlist::add_dff_placeholder(std::string gate_name, bool scanned) {
  Gate g;
  g.type = GateType::kDff;
  g.name = std::move(gate_name);
  g.scanned = scanned;
  const GateId id = add_node(std::move(g));
  dffs_.push_back(id);
  return id;
}

void Netlist::connect_dff(GateId dff, GateId d_input) {
  check_mutable();
  XH_REQUIRE(dff < gates_.size() && gates_[dff].type == GateType::kDff,
             "connect_dff target is not a DFF");
  XH_REQUIRE(d_input < gates_.size(), "DFF D input does not exist");
  XH_REQUIRE(gates_[dff].fanin.empty(), "DFF D input already connected");
  gates_[dff].fanin = {d_input};
}

void Netlist::mark_output(GateId id) {
  check_mutable();
  XH_REQUIRE(id < gates_.size(), "output gate does not exist");
  if (!output_flag_[id]) {
    output_flag_[id] = true;
    outputs_.push_back(id);
  }
}

void Netlist::set_scanned(GateId dff, bool scanned) {
  check_mutable();
  XH_REQUIRE(dff < gates_.size() && gates_[dff].type == GateType::kDff,
             "set_scanned target is not a DFF");
  gates_[dff].scanned = scanned;
}

void Netlist::finalize() {
  check_mutable();

  // Structural checks.
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.type == GateType::kDff) {
      XH_REQUIRE(g.fanin.size() == 1,
                 "DFF left unconnected: " + g.name);
    }
    if (g.type == GateType::kBus) {
      for (const GateId f : g.fanin) {
        XH_REQUIRE(gates_[f].type == GateType::kTristate,
                   "bus fanin must be tristate drivers: " + g.name);
      }
    }
  }

  // add_node enforces fanin-id < gate-id, so ids are already topological;
  // record the combinational order (sources first, in id order).
  topo_.clear();
  topo_.reserve(gates_.size());
  for (GateId id = 0; id < gates_.size(); ++id) topo_.push_back(id);

  // Fanout adjacency. DFF D-input edges are included: fault simulation and
  // scan capture both need to know who observes a net.
  fanout_.assign(gates_.size(), {});
  for (GateId id = 0; id < gates_.size(); ++id) {
    for (const GateId f : gates_[id].fanin) fanout_[f].push_back(id);
  }

  // Levelization over combinational edges only.
  level_.assign(gates_.size(), 0);
  depth_ = 0;
  for (const GateId id : topo_) {
    const Gate& g = gates_[id];
    if (!is_combinational(g.type)) continue;
    std::size_t lvl = 0;
    for (const GateId f : g.fanin) {
      const std::size_t src_level =
          is_combinational(gates_[f].type) ? level_[f] + 1 : 1;
      lvl = std::max(lvl, src_level);
    }
    level_[id] = lvl;
    depth_ = std::max(depth_, lvl);
  }

  finalized_ = true;
}

const Gate& Netlist::gate(GateId id) const {
  XH_REQUIRE(id < gates_.size(), "gate id out of range");
  return gates_[id];
}

std::vector<GateId> Netlist::scan_dffs() const {
  std::vector<GateId> out;
  for (const GateId id : dffs_) {
    if (gates_[id].scanned) out.push_back(id);
  }
  return out;
}

std::vector<GateId> Netlist::nonscan_dffs() const {
  std::vector<GateId> out;
  for (const GateId id : dffs_) {
    if (!gates_[id].scanned) out.push_back(id);
  }
  return out;
}

const std::vector<GateId>& Netlist::topo_order() const {
  XH_REQUIRE(finalized_, "topo_order requires finalize()");
  return topo_;
}

const std::vector<GateId>& Netlist::fanout(GateId id) const {
  XH_REQUIRE(finalized_, "fanout requires finalize()");
  XH_REQUIRE(id < gates_.size(), "gate id out of range");
  return fanout_[id];
}

std::vector<GateId> Netlist::fanout_cone(GateId start) const {
  XH_REQUIRE(finalized_, "fanout_cone requires finalize()");
  std::vector<bool> seen(gates_.size(), false);
  std::vector<GateId> stack = {start};
  std::vector<GateId> cone;
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    for (const GateId next : fanout_[id]) {
      if (!seen[next]) {
        seen[next] = true;
        cone.push_back(next);
        // Do not cross state elements: the cone is combinational.
        if (gates_[next].type != GateType::kDff) stack.push_back(next);
      }
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

std::size_t Netlist::level(GateId id) const {
  XH_REQUIRE(finalized_, "level requires finalize()");
  XH_REQUIRE(id < gates_.size(), "gate id out of range");
  return level_[id];
}

GateId Netlist::find(const std::string& gate_name) const {
  const auto it = by_name_.find(gate_name);
  return it == by_name_.end() ? kNoGate : it->second;
}

bool Netlist::is_output(GateId id) const {
  XH_REQUIRE(id < gates_.size(), "gate id out of range");
  return output_flag_[id];
}

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.inputs = nl.inputs().size();
  s.outputs = nl.outputs().size();
  s.dffs = nl.dffs().size();
  s.nonscan_dffs = nl.nonscan_dffs().size();
  s.depth = nl.depth();
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gate(id);
    if (is_combinational(g.type)) ++s.gates;
    if (g.type == GateType::kTristate) ++s.tristate_drivers;
    if (g.type == GateType::kBus) ++s.buses;
  }
  return s;
}

}  // namespace xh
