#include "core/partitioner.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "engine/partition_engine.hpp"
#include "masking/mask.hpp"
#include "misr/accounting.hpp"
#include "storage/store_factory.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xh {

PartitionResult partition_patterns(const XMatrix& xm,
                                   const PartitionerConfig& cfg) {
  cfg.misr.validate();
  XH_REQUIRE(xm.num_patterns() > 0, "X matrix has no patterns");
  // The plain-function entry point always probes the default CSR snapshot;
  // backend selection is a PipelineContext concern (run_partitioning()).
  const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
  PartitionEngine engine(*store, cfg);
  return engine.run();
}

// ---------------------------------------------------------------------------
// Seed implementation (oracle). Everything below is the pre-engine
// partitioner, kept byte-for-byte in behavior: the equivalence suite pins
// the engine to it, and bench_partitioner reports the speedup against it.
// ---------------------------------------------------------------------------

namespace {

/// Working state for one pattern group, with cached analysis.
struct Part {
  BitVec patterns;
  std::size_t span = 0;          // patterns.count()
  std::size_t masked_cells = 0;  // cells X in every pattern of the group
  // Best candidate group of same-X-count cells (0 < count < span):
  std::size_t group_size = 0;
  std::size_t group_xcount = 0;
  std::vector<std::size_t> group_cells;

  std::size_t masked_x() const { return masked_cells * span; }
  /// Ranking key: the X volume the group could surrender to masking if it is
  /// truly inter-correlated (size × count). On every example the paper
  /// works through this picks the same group as "largest number of scan
  /// cells with the same number of X's", and unlike the raw cell count it is
  /// not fooled by swarms of weakly-correlated low-count cells at industrial
  /// scale (see DESIGN.md §6).
  std::size_t group_score() const { return group_size * group_xcount; }
  bool splittable(bool allow_singletons) const {
    return group_size >= (allow_singletons ? 1u : 2u);
  }
};

/// Scans the X cells once to derive the mask size and the best candidate
/// group of the partition.
///
/// The paper groups cells purely by equal X count and ASSUMES equal counts
/// imply shared patterns ("there will be a chance that they are handled
/// together"). At industrial scale coincidental count ties between unrelated
/// cells break that assumption, so candidate groups here are keyed by
/// (count, pattern-set-within-partition): cells in one group provably share
/// their X patterns inside this partition, making the group's masking gain
/// (size × count) exact instead of hoped-for. On every example in the paper
/// the two rules select identical groups.
Part analyze(const XMatrix& xm, const std::vector<std::size_t>& x_cells,
             BitVec patterns) {
  Part part;
  part.span = patterns.count();
  part.patterns = std::move(patterns);
  XH_ASSERT(part.span > 0, "empty partition");

  const auto set_hash = [&](const BitVec& pats) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t w = 0; w < pats.word_count(); ++w) {
      const std::uint64_t masked_word =
          pats.word(w) & part.patterns.word(w);
      h ^= masked_word;
      h *= 0x100000001b3ULL;
    }
    return h;
  };

  // (count, intersection hash) → cells provably sharing their in-partition
  // X patterns. count == span cells are exactly the maskable ones.
  std::map<std::pair<std::size_t, std::uint64_t>,
           std::vector<std::size_t>>
      groups;
  for (const std::size_t cell : x_cells) {
    const BitVec& pats = xm.patterns_of(cell);
    const std::size_t count = xm.x_count_in(cell, part.patterns);
    if (count == part.span) {
      ++part.masked_cells;
    } else if (count > 0) {
      groups[{count, set_hash(pats)}].push_back(cell);
    }
  }
  for (auto& [key, cells] : groups) {
    // Rank by the (now exact) maskable X volume; break ties toward more
    // cells, then the higher X count.
    const std::size_t count = key.first;
    const std::size_t score = cells.size() * count;
    const bool better =
        score > part.group_score() ||
        (score == part.group_score() &&
         (cells.size() > part.group_size ||
          (cells.size() == part.group_size && count > part.group_xcount)));
    if (better) {
      part.group_size = cells.size();
      part.group_xcount = count;
      part.group_cells = std::move(cells);
    }
  }
  return part;
}

double state_bits(const XMatrix& xm, const std::vector<Part>& parts,
                  const MisrConfig& misr) {
  std::uint64_t masked = 0;
  for (const Part& p : parts) masked += p.masked_x();
  const std::uint64_t leaked = xm.total_x() - masked;
  return hybrid_bits(xm.geometry(), parts.size(), misr, leaked);
}

PartitionRound snapshot(std::size_t round, const XMatrix& xm,
                        const std::vector<Part>& parts,
                        const MisrConfig& misr) {
  PartitionRound r;
  r.round = round;
  r.num_partitions = parts.size();
  for (const Part& p : parts) r.masked_x += p.masked_x();
  r.leaked_x = xm.total_x() - r.masked_x;
  r.total_bits = state_bits(xm, parts, misr);
  return r;
}

}  // namespace

PartitionResult partition_patterns_reference(const XMatrix& xm,
                                             const PartitionerConfig& cfg) {
  cfg.misr.validate();
  XH_REQUIRE(xm.num_patterns() > 0, "X matrix has no patterns");

  // One snapshot for the whole run: x_cells() is computed per call since
  // the mutable lazy cache was removed.
  const std::vector<std::size_t> x_cells = xm.x_cells();

  Rng rng(cfg.seed);
  std::vector<Part> parts;
  parts.push_back(analyze(xm, x_cells, BitVec(xm.num_patterns(), true)));

  PartitionResult result;
  result.history.push_back(snapshot(0, xm, parts, cfg.misr));

  std::size_t round = 0;
  while (round < cfg.max_rounds) {
    // Candidate = partition with the strongest same-count group.
    std::size_t best = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (!parts[i].splittable(cfg.allow_singleton_groups)) continue;
      if (best == parts.size() ||
          parts[i].group_score() > parts[best].group_score()) {
        best = i;
      }
    }
    if (best == parts.size()) break;  // nothing left to split

    const Part& victim = parts[best];
    const std::size_t pick =
        cfg.cell_choice == SplitCellChoice::kRandom
            ? static_cast<std::size_t>(rng.below(victim.group_cells.size()))
            : 0;  // group_cells is ascending (x_cells is sorted)
    const std::size_t split_cell = victim.group_cells[pick];

    const BitVec& cell_pats = xm.patterns_of(split_cell);
    BitVec with_x = victim.patterns & cell_pats;
    BitVec without_x = victim.patterns;
    without_x.and_not(cell_pats);
    XH_ASSERT(with_x.any() && without_x.any(),
              "split cell must divide the partition");

    std::vector<Part> next = parts;
    next.erase(next.begin() + static_cast<std::ptrdiff_t>(best));
    next.push_back(analyze(xm, x_cells, std::move(with_x)));
    next.push_back(analyze(xm, x_cells, std::move(without_x)));

    PartitionRound probe = snapshot(round + 1, xm, next, cfg.misr);
    probe.split_cell = split_cell;

    if (cfg.stop_on_cost_increase &&
        probe.total_bits >= result.history.back().total_bits) {
      probe.accepted = false;
      result.history.push_back(probe);
      break;
    }
    parts = std::move(next);
    result.history.push_back(probe);
    ++round;
  }

  // Materialize the final state.
  result.partitions.reserve(parts.size());
  result.masks.reserve(parts.size());
  std::uint64_t masked = 0;
  for (Part& p : parts) {
    BitVec mask = partition_mask(xm, p.patterns);
    XH_ASSERT(mask.count() == p.masked_cells, "mask/analysis disagreement");
    masked += p.masked_x();
    result.partitions.push_back(std::move(p.patterns));
    result.masks.push_back(std::move(mask));
  }
  result.masked_x = masked;
  result.leaked_x = xm.total_x() - masked;
  result.masking_bits =
      static_cast<double>(xm.geometry().num_cells()) *
      static_cast<double>(result.partitions.size());
  result.canceling_bits = x_canceling_only_bits(cfg.misr, result.leaked_x);
  result.total_bits = result.masking_bits + result.canceling_bits;
  return result;
}

}  // namespace xh
