// Robustness overhead — what graceful degradation costs. The table sweeps
// injected undeclared-X counts through the validating pipeline and shows how
// stops, selection vectors, and diagnostics grow; the timings compare the
// trusting pipeline against the validating one (cross-check + classification)
// and price the corruption engine itself.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/hybrid.hpp"
#include "inject/corruptor.hpp"
#include "obs/telemetry_json.hpp"
#include "obs/trace.hpp"
#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"
#include "util/diagnostics.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

/// Random deterministic values everywhere, X's exactly where declared.
ResponseMatrix materialize(const XMatrix& xm, std::uint64_t seed) {
  ResponseMatrix r(xm.geometry(), xm.num_patterns());
  Rng rng(seed);
  for (std::size_t p = 0; p < r.num_patterns(); ++p) {
    for (std::size_t c = 0; c < r.num_cells(); ++c) {
      r.set(p, c, rng.chance(0.5) ? Lv::k1 : Lv::k0);
    }
  }
  for (const std::size_t cell : xm.x_cells()) {
    for (const std::size_t p : xm.patterns_of(cell).set_bits()) {
      r.set(p, cell, Lv::kX);
    }
  }
  return r;
}

struct Prepared {
  XMatrix declared;
  ResponseMatrix response;
};

const Prepared& prepared() {
  static const Prepared p = [] {
    WorkloadProfile profile;
    profile.name = "robustness";
    profile.geometry = {8, 32};
    profile.num_patterns = 200;
    profile.x_density = 0.02;
    profile.cluster_cells_mean = 6;
    profile.cluster_patterns_mean = 40;
    profile.seed = 17;
    XMatrix declared = generate_workload(profile);
    ResponseMatrix response = materialize(declared, 18);
    return Prepared{std::move(declared), std::move(response)};
  }();
  return p;
}

void print_degradation_sweep(Trace* trace) {
  const Prepared& p = prepared();
  std::printf(
      "== Robustness: validating pipeline under undeclared X's ==\n"
      "%zu patterns x %zu cells, %llu declared X's; each row injects\n"
      "undeclared X's and runs the validating simulation (DESIGN.md section 7).\n",
      p.response.num_patterns(), p.response.num_cells(),
      static_cast<unsigned long long>(p.declared.total_x()));

  TextTable t({"injected", "stops", "sel vectors", "degraded", "diag errors",
               "diag warnings"});
  for (const std::size_t injected : {0u, 8u, 32u, 128u}) {
    ResponseMatrix corrupted = p.response;
    Corruptor corruptor(91);
    corruptor.add_undeclared_x(corrupted, injected);
    Diagnostics diags;
    PipelineContext ctx;
    ctx.adopt_collector(&diags);
    ctx.set_trace(trace);
    const HybridSimulation sim =
        run_hybrid_simulation(corrupted, p.declared, ctx);
    t.add_row({std::to_string(injected), std::to_string(sim.cancel.stops),
               std::to_string(sim.cancel.selection_vectors),
               sim.degraded ? "yes" : "no",
               std::to_string(diags.count(DiagSeverity::kError)),
               std::to_string(diags.count(DiagSeverity::kWarning))});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Expected: every undeclared X flows into the X-canceling MISR, so\n"
      "stops and selection vectors climb while the signature stays X-free;\n"
      "diagnostics grow linearly but retention is capped per kind.\n\n");
}

void BM_TrustingSimulation(benchmark::State& state) {
  const Prepared& p = prepared();
  for (auto _ : state) {
    PipelineContext ctx;
    benchmark::DoNotOptimize(run_hybrid_simulation(p.response, ctx));
  }
}

void BM_ValidatingSimulationClean(benchmark::State& state) {
  const Prepared& p = prepared();
  for (auto _ : state) {
    Diagnostics diags;
    PipelineContext ctx;
    ctx.adopt_collector(&diags);
    benchmark::DoNotOptimize(
        run_hybrid_simulation(p.response, p.declared, ctx));
  }
}

void BM_ValidatingSimulationCorrupted(benchmark::State& state) {
  const Prepared& p = prepared();
  ResponseMatrix corrupted = p.response;
  Corruptor corruptor(92);
  corruptor.add_undeclared_x(corrupted,
                             static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Diagnostics diags;
    PipelineContext ctx;
    ctx.adopt_collector(&diags);
    benchmark::DoNotOptimize(
        run_hybrid_simulation(corrupted, p.declared, ctx));
  }
}

void BM_ValidateResponseOnly(benchmark::State& state) {
  const Prepared& p = prepared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        validate_response(p.response, p.declared, nullptr));
  }
}

void BM_CorruptorInjection(benchmark::State& state) {
  const Prepared& p = prepared();
  Corruptor corruptor(93);
  for (auto _ : state) {
    ResponseMatrix copy = p.response;
    benchmark::DoNotOptimize(corruptor.add_undeclared_x(copy, 64));
  }
}

BENCHMARK(BM_TrustingSimulation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ValidatingSimulationClean)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ValidatingSimulationCorrupted)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ValidateResponseOnly)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CorruptorInjection)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  // --telemetry <path> is ours, not google-benchmark's: strip it before
  // Initialize() so the flag parser never sees it.
  std::string telemetry_path;
  std::vector<char*> args(argv, argv + argc);
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string arg = args[i];
    if (arg == "--telemetry" && i + 1 < args.size()) {
      telemetry_path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  int filtered_argc = static_cast<int>(args.size());

  xh::Trace trace;
  xh::print_degradation_sweep(telemetry_path.empty() ? nullptr : &trace);
  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path);
    xh::TelemetryMeta meta;
    meta.tool = "bench_robustness";
    meta.run = {{"workload", "robustness"},
                {"sweep", "undeclared-x 0/8/32/128"}};
    xh::write_telemetry_json(out, trace, meta);
    std::printf("telemetry written to %s\n", telemetry_path.c_str());
  }

  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
