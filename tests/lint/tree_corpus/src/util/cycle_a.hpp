#pragma once

#include "util/cycle_b.hpp"

namespace fixture {

struct CycleA {
  CycleB* peer = nullptr;
};

}  // namespace fixture
