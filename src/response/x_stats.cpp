#include "response/x_stats.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/check.hpp"

namespace xh {

double XStatistics::cell_fraction_covering(double x_fraction) const {
  XH_REQUIRE(x_fraction >= 0.0 && x_fraction <= 1.0,
             "x_fraction must be in [0,1]");
  if (total_x == 0 || num_cells == 0) return 0.0;
  const double target = x_fraction * static_cast<double>(total_x);
  double covered = 0.0;
  std::size_t used = 0;
  for (const std::size_t count : sorted_counts_) {
    if (covered >= target) break;
    covered += static_cast<double>(count);
    ++used;
  }
  return static_cast<double>(used) / static_cast<double>(num_cells);
}

XHistogramBucket XStatistics::largest_bucket() const {
  XHistogramBucket best;
  for (const auto& b : histogram) {
    // histogram is sorted by descending x_count, so on a cell-count tie the
    // earlier (larger-x_count) bucket is kept.
    if (b.num_cells > best.num_cells) best = b;
  }
  return best;
}

XStatistics compute_x_statistics(const XMatrix& xm) {
  XStatistics s;
  s.num_cells = xm.num_cells();
  s.num_patterns = xm.num_patterns();
  s.total_x = xm.total_x();
  s.x_capturing_cells = xm.x_cells().size();
  s.x_density = xm.x_density();

  std::map<std::size_t, std::size_t> by_count;
  for (const std::size_t cell : xm.x_cells()) {
    const std::size_t count = xm.x_count(cell);
    ++by_count[count];
    s.sorted_counts_.push_back(count);
  }
  std::sort(s.sorted_counts_.begin(), s.sorted_counts_.end(),
            std::greater<>());
  for (auto it = by_count.rbegin(); it != by_count.rend(); ++it) {
    s.histogram.push_back({it->first, it->second});
  }
  return s;
}

std::vector<XCluster> find_x_clusters(const XMatrix& xm) {
  // Group by pattern-set content. Hash the BitVec words; resolve equal
  // hashes by full comparison via the map's bucket vector.
  struct Group {
    BitVec patterns;
    std::vector<std::size_t> cells;
  };
  std::unordered_map<std::uint64_t, std::vector<Group>> buckets;

  const auto hash_of = [](const BitVec& v) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t w = 0; w < v.word_count(); ++w) {
      h ^= v.word(w);
      h *= 0x100000001b3ULL;
    }
    return h;
  };

  for (const std::size_t cell : xm.x_cells()) {
    const BitVec& pats = xm.patterns_of(cell);
    auto& groups = buckets[hash_of(pats)];
    bool placed = false;
    for (auto& g : groups) {
      if (g.patterns == pats) {
        g.cells.push_back(cell);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({pats, {cell}});
  }

  std::vector<XCluster> clusters;
  // Hash order never escapes: the sort below imposes a total order (size,
  // then X count, then first cell — clusters are cell-disjoint, so the
  // first cell is a unique tiebreak). xh-lint: allow(XH-DET-002)
  for (auto& [hash, groups] : buckets) {
    for (auto& g : groups) {
      clusters.push_back({std::move(g.patterns), std::move(g.cells)});
    }
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const XCluster& a, const XCluster& b) {
              if (a.cells.size() != b.cells.size()) {
                return a.cells.size() > b.cells.size();
              }
              if (a.x_count() != b.x_count()) return a.x_count() > b.x_count();
              return a.cells.front() < b.cells.front();
            });
  return clusters;
}

IntraCorrelation analyze_intra_correlation(const XMatrix& xm) {
  // All quantities are computed with pattern-set algebra over the sparse
  // matrix (cells are chain-major, so chain neighbours are cell, cell+1):
  //   * (cell, p) starts a run  ⇔  X(cell,p) ∧ ¬X(cell−1,p)
  //   * (cell, p) is adjacent   ⇔  X(cell,p) ∧ (X(cell−1,p) ∨ X(cell+1,p))
  //   * a run of length ≥ k exists at pos ⇔ ∩_{j<k} patterns(pos+j) ≠ ∅
  IntraCorrelation ic;
  const ScanGeometry& geo = xm.geometry();
  std::size_t x_total = 0;
  std::size_t x_adjacent = 0;

  const auto pats_at = [&](std::size_t chain,
                           std::ptrdiff_t pos) -> const BitVec* {
    if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(geo.chain_length)) {
      return nullptr;
    }
    const BitVec& p =
        xm.patterns_of(geo.cell_index(chain, static_cast<std::size_t>(pos)));
    return &p;
  };

  for (std::size_t chain = 0; chain < geo.num_chains; ++chain) {
    // total_runs / adjacency via neighbour set algebra.
    for (std::size_t pos = 0; pos < geo.chain_length; ++pos) {
      const BitVec* cur = pats_at(chain, static_cast<std::ptrdiff_t>(pos));
      const std::size_t count = cur->count();
      if (count == 0) continue;
      x_total += count;
      const BitVec* prev = pats_at(chain, static_cast<std::ptrdiff_t>(pos) - 1);
      const BitVec* next = pats_at(chain, static_cast<std::ptrdiff_t>(pos) + 1);

      BitVec starts = *cur;
      if (prev != nullptr) starts.and_not(*prev);
      ic.total_runs += starts.count();

      BitVec neighbour(xm.num_patterns());
      if (prev != nullptr) neighbour |= *prev;
      if (next != nullptr) neighbour |= *next;
      x_adjacent += (*cur & neighbour).count();
    }

    // longest_run: extend window intersections until they all die out.
    std::vector<BitVec> window;
    window.reserve(geo.chain_length);
    bool alive = false;
    for (std::size_t pos = 0; pos < geo.chain_length; ++pos) {
      const BitVec& p = *pats_at(chain, static_cast<std::ptrdiff_t>(pos));
      window.push_back(p);
      alive |= p.any();
    }
    std::size_t k = alive ? 1 : 0;
    while (alive && k < geo.chain_length) {
      alive = false;
      for (std::size_t pos = 0; pos + k < geo.chain_length; ++pos) {
        window[pos] &=
            *pats_at(chain, static_cast<std::ptrdiff_t>(pos + k));
        alive |= window[pos].any();
      }
      if (alive) ++k;
    }
    ic.longest_run = std::max(ic.longest_run, k);
  }

  if (ic.total_runs > 0) {
    ic.mean_run_length =
        static_cast<double>(x_total) / static_cast<double>(ic.total_runs);
  }
  if (x_total > 0) {
    ic.adjacency_fraction =
        static_cast<double>(x_adjacent) / static_cast<double>(x_total);
  }
  return ic;
}

}  // namespace xh
