#include "util/parse.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xh {
namespace {

TEST(ParseU64, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseU64, RejectsJunkThatAtollAccepts) {
  // std::atoll("12abc") == 12 and std::atoll("foo") == 0 — exactly the
  // silent coercions these helpers exist to kill.
  EXPECT_THROW(parse_u64("12abc"), std::invalid_argument);
  EXPECT_THROW(parse_u64("foo"), std::invalid_argument);
  EXPECT_THROW(parse_u64(""), std::invalid_argument);
  EXPECT_THROW(parse_u64(" 7"), std::invalid_argument);
  EXPECT_THROW(parse_u64("7 "), std::invalid_argument);
  EXPECT_THROW(parse_u64("-1"), std::invalid_argument);
  EXPECT_THROW(parse_u64("+1"), std::invalid_argument);
  EXPECT_THROW(parse_u64("0x10"), std::invalid_argument);
}

TEST(ParseU64, RejectsOverflow) {
  EXPECT_THROW(parse_u64("18446744073709551616"), std::invalid_argument);
  EXPECT_THROW(parse_u64("99999999999999999999999"), std::invalid_argument);
}

TEST(ParseU64, ErrorMessageNamesTheOffendingText) {
  try {
    parse_u64("12abc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("12abc"), std::string::npos);
  }
}

TEST(ParseSize, MatchesU64) {
  EXPECT_EQ(parse_size("123"), 123u);
  EXPECT_THROW(parse_size("12.5"), std::invalid_argument);
}

TEST(ParseF64, AcceptsDecimalsAndScientific) {
  EXPECT_DOUBLE_EQ(parse_f64("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_f64("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_f64("-2.5"), -2.5);
}

TEST(ParseF64, RejectsJunkNanAndInfinity) {
  EXPECT_THROW(parse_f64(""), std::invalid_argument);
  EXPECT_THROW(parse_f64("0.5x"), std::invalid_argument);
  EXPECT_THROW(parse_f64("nan"), std::invalid_argument);
  EXPECT_THROW(parse_f64("inf"), std::invalid_argument);
  EXPECT_THROW(parse_f64("1e999"), std::invalid_argument);
}

TEST(ParseF64, RejectsHexFloatsStrtodWouldAccept) {
  // strtod("0x10") == 16.0 with full consumption — the decimal contract
  // forbids it (a typo like "0x5" must not silently become 5 chains' worth
  // of density).
  EXPECT_THROW(parse_f64("0x10"), std::invalid_argument);
  EXPECT_THROW(parse_f64("0X1p3"), std::invalid_argument);
  EXPECT_THROW(parse_f64("x"), std::invalid_argument);
}

TEST(ParseF64, RejectsWhitespaceAndTrailingJunk) {
  EXPECT_THROW(parse_f64(" 0.5"), std::invalid_argument);
  EXPECT_THROW(parse_f64("0.5 "), std::invalid_argument);
  EXPECT_THROW(parse_f64("\t1.0"), std::invalid_argument);
  EXPECT_THROW(parse_f64("1.0\n"), std::invalid_argument);
  EXPECT_THROW(parse_f64("1..5"), std::invalid_argument);
  EXPECT_THROW(parse_f64("--1"), std::invalid_argument);
}

TEST(ParseU64, RejectsSignedIntoUnsignedBoundaryForms) {
  // Every way a negative value could sneak into an unsigned parameter.
  EXPECT_THROW(parse_u64("-0"), std::invalid_argument);
  EXPECT_THROW(parse_u64("-9223372036854775808"), std::invalid_argument);
  EXPECT_THROW(parse_u64("-18446744073709551615"), std::invalid_argument);
  // atoll-style wraparound text (2^64 + 5) must not alias to 5.
  EXPECT_THROW(parse_u64("18446744073709551621"), std::invalid_argument);
}

TEST(ParseU64, RejectsWhitespaceOnlyAndEmbeddedJunk) {
  EXPECT_THROW(parse_u64(" "), std::invalid_argument);
  EXPECT_THROW(parse_u64("\t"), std::invalid_argument);
  EXPECT_THROW(parse_u64("1 2"), std::invalid_argument);
  EXPECT_THROW(parse_u64(std::string("7\00", 2)), std::invalid_argument);
}

TEST(ParseSize, OverflowAtU64BoundaryStillThrows) {
  // parse_size narrows through parse_u64: the first value past the 64-bit
  // boundary must throw, and the largest in-range value must survive.
  EXPECT_EQ(parse_size("18446744073709551615"),
            static_cast<std::size_t>(UINT64_MAX));
  EXPECT_THROW(parse_size("18446744073709551616"), std::invalid_argument);
}

TEST(ParseErrors, MessagesNameTheFailureMode) {
  const auto message_of = [](const char* text) {
    try {
      parse_u64(text);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of("").find("empty"), std::string::npos);
  EXPECT_NE(message_of("-1").find("sign"), std::string::npos);
  EXPECT_NE(message_of("99999999999999999999").find("overflow"),
            std::string::npos);
}

}  // namespace
}  // namespace xh
