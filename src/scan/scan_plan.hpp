// Scan-chain planning: distributing the scanned flops of a netlist over a
// fixed number of equal-length chains.
//
// The plan is the bridge between the structural world (DFF gate ids) and the
// response world (ScanGeometry cell indices used by masking/partitioning):
// cell index = chain · chain_length + position. Chains are padded to equal
// length with inert cells (index space exists, never captures anything),
// mirroring how the paper counts control bits by the LONGEST chain.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "response/geometry.hpp"

namespace xh {

class ScanPlan {
 public:
  /// Distributes nl.scan_dffs() round-robin over @p num_chains chains.
  /// Requires at least one scanned DFF.
  static ScanPlan build(const Netlist& nl, std::size_t num_chains);

  const ScanGeometry& geometry() const { return geometry_; }

  /// Number of real (non-padding) scan cells.
  std::size_t num_scan_dffs() const { return dff_of_cell_count_; }

  /// DFF at a cell index, or kNoGate for a padding cell.
  GateId dff_at(std::size_t cell) const;

  /// Cell index of a scanned DFF; throws if the gate is not in the plan.
  std::size_t cell_of(GateId dff) const;

  /// All (cell, dff) pairs, ascending by cell.
  const std::vector<GateId>& cells() const { return cell_to_dff_; }

 private:
  ScanGeometry geometry_;
  std::vector<GateId> cell_to_dff_;        // kNoGate = padding
  std::vector<std::size_t> dff_to_cell_;   // indexed by GateId
  std::size_t dff_of_cell_count_ = 0;
};

}  // namespace xh
