// Transition-delay fault model with launch-on-capture (broadside)
// application.
//
// A slow-to-rise (STR) fault at a site delays its 0→1 edge past the at-speed
// capture window: whenever the launch frame leaves the site at 0 and the
// fault-free capture frame would raise it to 1, the faulty machine still
// reads 0 at capture (dually for slow-to-fall). LOC application:
//
//   1. scan-load the launch state, apply the PI vector,
//   2. functional clock — EVERY flop (scanned and unscanned) captures,
//   3. the at-speed capture frame evaluates; scanned flops capture and the
//      result shifts out.
//
// The launch (shift) frame runs at slow clock, so the site settles correctly
// there; the delay only matters in the capture frame — modeled by forcing
// the site to its pre-transition value in exactly the pattern lanes where a
// transition was launched (ParallelSim's lane-masked fault injection).
// Detection uses the same X-aware rule as stuck-at: both machines definite
// at an observed cell and different.
//
// A side effect worth noting: the functional launch clock initializes
// unscanned flops with (possibly definite) captured data, so the capture
// frame typically carries FEWER X's than a stuck-at frame — LOC interacts
// with the paper's X statistics.
#pragma once

#include <vector>

#include "fault/fault_model.hpp"
#include "netlist/netlist.hpp"
#include "scan/scan_plan.hpp"
#include "scan/test_application.hpp"

namespace xh {

struct TransitionFault {
  GateId gate = kNoGate;
  bool slow_to_rise = true;

  bool operator==(const TransitionFault&) const = default;
};

std::string transition_fault_name(const Netlist& nl,
                                  const TransitionFault& fault);

/// STR+STF on every faultable site (same universe as stuck-at enumeration).
std::vector<TransitionFault> enumerate_transition_faults(const Netlist& nl);

struct TransitionSimResult {
  std::vector<TransitionFault> faults;
  std::vector<bool> detected;
  std::size_t num_detected = 0;
  /// Faults whose transition was never even launched by the pattern set.
  std::size_t never_launched = 0;

  double coverage() const {
    return faults.empty() ? 0.0
                          : static_cast<double>(num_detected) /
                                static_cast<double>(faults.size());
  }
};

/// Launch-on-capture transition fault simulation (64 patterns per sweep;
/// the PI vector is held across both frames).
class TransitionFaultSimulator {
 public:
  TransitionFaultSimulator(const Netlist& nl, const ScanPlan& plan);

  TransitionSimResult run(const std::vector<TestPattern>& patterns,
                          const std::vector<TransitionFault>& faults) const;

  /// Fault-free capture-frame response under LOC (what the compactor sees);
  /// exposes the X-density effect of the functional launch clock.
  ResponseMatrix capture_frame_response(
      const std::vector<TestPattern>& patterns) const;

 private:
  const Netlist* nl_;
  const ScanPlan* plan_;
};

}  // namespace xh
