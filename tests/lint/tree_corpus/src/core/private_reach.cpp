// core may depend on the storage layer, but backend_blob.hpp sits behind
// the `private src/storage/backend_` directive — seeded XH-INC-002.
#include "storage/backend_blob.hpp"

namespace fixture {

int core_pages() { return BackendBlob{}.pages; }

}  // namespace fixture
