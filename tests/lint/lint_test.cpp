// Self-test corpus for xh_lint (DESIGN.md §9): every rule must fire on its
// bad snippets, stay silent on the good ones, and honor suppressions. The
// corpus lives under tests/lint/corpus/ mirroring the repo layout so the
// path-scoped rules (src/core/ vs bench/) see realistic virtual paths.
#include "lint/lint_core.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open corpus file " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Scans one corpus file the way the CLI would: virtual path relative to
/// the corpus root, sibling header attached for .cpp files.
std::vector<xh::lint::Finding> scan(const std::string& rel) {
  const fs::path root = fs::path(XH_LINT_CORPUS_DIR);
  const fs::path full = root / rel;
  xh::lint::SourceFile file{rel, read_file(full)};

  std::string header_content;
  const std::string* header = nullptr;
  fs::path sib = full;
  sib.replace_extension(".hpp");
  if (full.extension() == ".cpp" && fs::is_regular_file(sib)) {
    header_content = read_file(sib);
    header = &header_content;
  }
  return xh::lint::scan_file(file, header);
}

struct Expectation {
  const char* rel;   // corpus-relative path
  const char* rule;  // rule that must fire, or "" for must-be-clean
};

// Every corpus file appears here; CorpusIsFullyCovered enforces that.
const Expectation kExpectations[] = {
    {"src/core/det001_rand_bad.cpp", "XH-DET-001"},
    {"src/core/det001_time_bad.cpp", "XH-DET-001"},
    {"src/core/det001_chrono_bad.cpp", "XH-DET-001"},
    {"src/core/det001_random_device_bad.cpp", "XH-DET-001"},
    {"src/core/det001_digit_separator_bad.cpp", "XH-DET-001"},
    {"src/core/det001_ident_good.cpp", ""},
    {"src/core/det001_scanclock_good.cpp", ""},
    {"bench/det001_bench_good.cpp", ""},
    {"bench/det001_bench_bad.cpp", "XH-DET-001"},
    {"src/obs/det001_span_suppressed_good.cpp", ""},
    {"src/obs/det001_span_unsuppressed_bad.cpp", "XH-DET-001"},
    {"src/core/det002_local_bad.cpp", "XH-DET-002"},
    {"src/core/det002_iterator_bad.cpp", "XH-DET-002"},
    {"src/core/det002_member_bad.cpp", "XH-DET-002"},
    {"src/core/det002_member_bad.hpp", ""},
    {"src/core/det002_lookup_good.cpp", ""},
    {"src/core/err001_throw_bad.cpp", "XH-ERR-001"},
    {"src/core/err001_abort_bad.cpp", "XH-ERR-001"},
    {"src/core/err001_require_good.cpp", ""},
    {"src/response/err001_outside_good.cpp", ""},
    {"src/core/parse001_bad.cpp", "XH-PARSE-001"},
    {"src/core/parse001_good.cpp", ""},
    {"src/core/hdr001_missing_bad.hpp", "XH-HDR-001"},
    {"src/core/hdr001_late_bad.hpp", "XH-HDR-001"},
    {"src/core/hdr002_using_bad.hpp", "XH-HDR-002"},
    {"src/core/hdr_clean_good.hpp", ""},
    {"src/service/flow001_discard_bad.cpp", "XH-FLOW-001"},
    {"src/service/flow001_overwrite_bad.cpp", "XH-FLOW-001"},
    {"src/service/flow001_checked_good.cpp", ""},
    {"src/service/flow002_spin_bad.cpp", "XH-FLOW-002"},
    {"src/service/flow002_consult_good.cpp", ""},
    {"src/storage/flow003_seam_bad.cpp", "XH-FLOW-003"},
    {"src/storage/flow003_seam_good.cpp", ""},
    {"src/service/flow003_guard_bad.cpp", "XH-FLOW-003"},
    {"src/service/flow003_guard_good.cpp", ""},
    {"src/service/flow004_move_bad.cpp", "XH-FLOW-004"},
    {"src/service/flow004_rebind_good.cpp", ""},
    {"src/core/suppress_line_good.cpp", ""},
    {"src/core/suppress_above_good.cpp", ""},
    {"src/core/suppress_file_good.cpp", ""},
    {"src/core/suppress_wrong_rule_bad.cpp", "XH-DET-001"},
    {"src/core/literal_good.cpp", ""},
};

std::string describe(const std::vector<xh::lint::Finding>& findings) {
  std::string out;
  for (const auto& f : findings) out += xh::lint::to_string(f) + "\n";
  return out;
}

TEST(LintCorpus, BadSnippetsFireTheirRule) {
  for (const Expectation& e : kExpectations) {
    if (std::string(e.rule).empty()) continue;
    const auto findings = scan(e.rel);
    const bool fired =
        std::any_of(findings.begin(), findings.end(),
                    [&](const xh::lint::Finding& f) { return f.rule == e.rule; });
    EXPECT_TRUE(fired) << e.rel << " must trigger " << e.rule << "; got:\n"
                       << describe(findings);
    // Bad snippets are minimal: they must not trip unrelated rules either.
    for (const auto& f : findings) {
      EXPECT_EQ(f.rule, e.rule) << "unexpected extra finding in " << e.rel
                                << ":\n"
                                << describe(findings);
    }
  }
}

TEST(LintCorpus, GoodSnippetsStayClean) {
  for (const Expectation& e : kExpectations) {
    if (!std::string(e.rule).empty()) continue;
    const auto findings = scan(e.rel);
    EXPECT_TRUE(findings.empty())
        << e.rel << " must be clean; got:\n" << describe(findings);
  }
}

TEST(LintCorpus, CorpusIsFullyCovered) {
  std::set<std::string> expected;
  for (const Expectation& e : kExpectations) expected.insert(e.rel);
  const fs::path root = fs::path(XH_LINT_CORPUS_DIR);
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    EXPECT_TRUE(expected.count(rel) == 1)
        << "corpus file " << rel << " has no expectation in lint_test.cpp";
  }
}

TEST(LintFindings, CarryLineNumbersAndFormat) {
  xh::lint::SourceFile file{"src/core/example.cpp",
                            "#include <cstdlib>\n"
                            "int a() { return 1; }\n"
                            "int b() { return rand(); }\n"};
  const auto findings = xh::lint::scan_file(file);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[0].rule, "XH-DET-001");
  EXPECT_EQ(xh::lint::to_string(findings[0]).substr(0, 25),
            "src/core/example.cpp:3: [");
}

TEST(LintFindings, MultipleRulesSortedByLine) {
  xh::lint::SourceFile file{"src/engine/example.cpp",
                            "#include <cstdlib>\n"
                            "void x() { throw 1; }\n"
                            "int y(const char* s) { return atoi(s); }\n"
                            "int z() { return rand(); }\n"};
  const auto findings = xh::lint::scan_file(file);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "XH-ERR-001");
  EXPECT_EQ(findings[1].rule, "XH-PARSE-001");
  EXPECT_EQ(findings[2].rule, "XH-DET-001");
  EXPECT_TRUE(std::is_sorted(
      findings.begin(), findings.end(),
      [](const auto& a, const auto& b) { return a.line < b.line; }));
}

TEST(LintRules, RegistryListsEveryRuleFamily) {
  const auto& rules = xh::lint::rules();
  ASSERT_EQ(rules.size(), 21u);
  std::set<std::string> ids;
  for (const auto& r : rules) ids.insert(r.id);
  EXPECT_EQ(ids, (std::set<std::string>{
                     "XH-DET-001", "XH-DET-002", "XH-ERR-001", "XH-PARSE-001",
                     "XH-HDR-001", "XH-HDR-002", "XH-INC-001", "XH-INC-002",
                     "XH-INC-003", "XH-API-001", "XH-API-002", "XH-OBS-001",
                     "XH-SUP-001", "XH-FLOW-001", "XH-FLOW-002", "XH-FLOW-003",
                     "XH-FLOW-004", "XH-IPA-001", "XH-IPA-002", "XH-RACE-001",
                     "XH-RACE-002"}));
}

TEST(LintRules, RegistryVersionTracksTheRuleSet) {
  const std::string v = xh::lint::registry_version();
  // "xh-lint-registry/<count>/<16-hex-digit hash>" — the count makes a
  // grown registry visibly different, the hash catches edits in place.
  EXPECT_EQ(v.rfind("xh-lint-registry/21/", 0), 0u) << v;
  EXPECT_EQ(v.size(), std::string("xh-lint-registry/21/").size() + 16) << v;
  EXPECT_EQ(v, xh::lint::registry_version());  // deterministic
}

TEST(LintFindings, JsonDocumentIsVersionedAndEscaped) {
  const std::vector<xh::lint::Finding> findings = {
      {"src/a.cpp", 3, "XH-DET-001", "uses \"rand\"\n"},
  };
  const std::string json = xh::lint::findings_to_json(findings);
  EXPECT_NE(json.find("\"schema\": \"xh-lint-findings/1\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"XH-DET-001\""), std::string::npos);
  EXPECT_NE(json.find("\"by_rule\""), std::string::npos);
  EXPECT_NE(json.find("\"XH-DET-001\": 1"), std::string::npos);
  EXPECT_NE(json.find("uses \\\"rand\\\"\\n"), std::string::npos);
  // Keys are emitted sorted at every level so baseline diffs are textual.
  EXPECT_LT(json.find("\"by_rule\""), json.find("\"count\""));
  EXPECT_LT(json.find("\"count\""), json.find("\"findings\""));
  EXPECT_LT(json.find("\"findings\""), json.find("\"schema\""));
  EXPECT_LT(json.find("\"line\""), json.find("\"message\""));
  EXPECT_LT(json.find("\"message\""), json.find("\"path\""));
  EXPECT_LT(json.find("\"path\""), json.find("\"rule\""));
  const std::string empty = xh::lint::findings_to_json({});
  EXPECT_NE(empty.find("\"count\": 0"), std::string::npos);
}

TEST(LintFindings, SarifDocumentCarriesRulesAndResults) {
  const std::vector<xh::lint::Finding> findings = {
      {"src/a.cpp", 3, "XH-RACE-002", "posts while holding \"mu_\""},
  };
  const std::string sarif = xh::lint::findings_to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"xh_lint\""), std::string::npos);
  // Every registry rule is described in the driver block, fired or not.
  for (const auto& r : xh::lint::rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + r.id + "\""), std::string::npos)
        << r.id;
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"XH-RACE-002\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(sarif.find("posts while holding \\\"mu_\\\""),
            std::string::npos);
  // An empty run still produces a valid document with the rule list.
  const std::string empty = xh::lint::findings_to_sarif({});
  EXPECT_NE(empty.find("\"results\": []"), std::string::npos);
}

}  // namespace
