// Spatial compaction: folding C scan-chain outputs onto m MISR inputs.
//
// When a design has more chains than MISR stages (CKT-A drives 1050 chains
// into a 32-bit MISR), chains are XOR-folded. XOR folding is X-transparent in
// the bad direction — an X on any folded chain makes the whole stage input X —
// but two X's folding into the same stage in the same cycle merge into ONE
// unknown, which slightly reduces the X count the canceling stage sees. This
// class makes that effect explicit and measurable.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/logic.hpp"

namespace xh {

/// Round-robin XOR tree: chain c feeds MISR stage (c mod m).
class SpatialCompactor {
 public:
  SpatialCompactor(std::size_t num_chains, std::size_t misr_size);

  std::size_t num_chains() const { return num_chains_; }
  std::size_t misr_size() const { return misr_size_; }

  /// Folds one cycle's chain outputs (size num_chains) into a MISR slice
  /// (size misr_size). Z is rejected — chain outputs are captured values.
  std::vector<Lv> compact(const std::vector<Lv>& chain_values);

  /// X's that arrived on the chains across all compact() calls.
  std::size_t x_in() const { return x_in_; }
  /// X's that left toward the MISR (<= x_in(); the difference is X merging).
  std::size_t x_out() const { return x_out_; }
  /// Deterministic chain bits destroyed by sharing a stage with an X.
  std::size_t definite_bits_absorbed() const { return absorbed_; }

  void reset_counters();

 private:
  std::size_t num_chains_;
  std::size_t misr_size_;
  std::size_t x_in_ = 0;
  std::size_t x_out_ = 0;
  std::size_t absorbed_ = 0;
};

}  // namespace xh
