// XH-RACE-002 non-firing fixture: both paths nest a_mu_ before b_mu_ —
// consistent order, no inversion.
#include <mutex>

namespace fixture {

class Tandem {
 public:
  void both();
  void refresh();

 private:
  std::mutex a_mu_;
  std::mutex b_mu_;
  int epoch_ = 0;
};

void Tandem::both() {
  std::lock_guard<std::mutex> outer(a_mu_);
  std::lock_guard<std::mutex> inner(b_mu_);
  epoch_ = epoch_ + 1;
}

void Tandem::refresh() {
  std::lock_guard<std::mutex> outer(a_mu_);
  std::lock_guard<std::mutex> inner(b_mu_);
  epoch_ = epoch_ + 2;
}

}  // namespace fixture
