#include "core/hybrid.hpp"

#include <stdexcept>
#include <string>

#include "engine/partition_engine.hpp"
#include "engine/pipeline.hpp"
#include "kernels/kernels.hpp"
#include "masking/mask.hpp"
#include "misr/accounting.hpp"
#include "util/check.hpp"

namespace xh {

HybridReport run_hybrid_analysis(const XMatrix& xm, PipelineContext& ctx) {
  const ScopedSpan span(ctx.trace(), "analysis");
  HybridReport rep;
  rep.num_patterns = xm.num_patterns();
  rep.num_chains = xm.geometry().num_chains;
  rep.chain_length = xm.geometry().chain_length;
  rep.total_x = xm.total_x();
  rep.x_density = xm.x_density();

  rep.partitioning = run_partitioning(xm, ctx);

  const MisrConfig& misr = ctx.misr();
  rep.masking_only_bits =
      x_masking_only_bits(xm.geometry(), xm.num_patterns());
  rep.canceling_only_bits = x_canceling_only_bits(misr, rep.total_x);
  rep.proposed_bits = rep.partitioning.total_bits;
  if (rep.proposed_bits > 0.0) {
    rep.improvement_over_masking =
        static_cast<double>(rep.masking_only_bits) / rep.proposed_bits;
    rep.improvement_over_canceling =
        rep.canceling_only_bits / rep.proposed_bits;
  }

  const double cells_per_pattern =
      static_cast<double>(xm.geometry().num_cells());
  const double leaked_density =
      static_cast<double>(rep.partitioning.leaked_x) /
      (cells_per_pattern * static_cast<double>(xm.num_patterns()));
  rep.test_time_canceling_only =
      normalized_test_time(rep.num_chains, rep.x_density, misr);
  rep.test_time_proposed =
      normalized_test_time(rep.num_chains, leaked_density, misr);
  if (rep.test_time_proposed > 0.0) {
    rep.test_time_improvement =
        rep.test_time_canceling_only / rep.test_time_proposed;
  }

  // Headline accounting as gauges: pure functions of the input, so these
  // are stable across runs and golden-testable (unlike the timers).
  Trace* trace = ctx.trace();
  obs_gauge(trace, "hybrid.partitions",
            static_cast<double>(rep.partitioning.partitions.size()));
  obs_gauge(trace, "hybrid.masked_x",
            static_cast<double>(rep.partitioning.masked_x));
  obs_gauge(trace, "hybrid.leaked_x",
            static_cast<double>(rep.partitioning.leaked_x));
  obs_gauge(trace, "hybrid.masking_bits", rep.partitioning.masking_bits);
  obs_gauge(trace, "hybrid.canceling_bits", rep.partitioning.canceling_bits);
  obs_gauge(trace, "hybrid.total_bits", rep.partitioning.total_bits);
  return rep;
}

HybridReport run_hybrid_analysis(const XMatrix& xm, const HybridConfig& cfg) {
  PipelineContext ctx(cfg.partitioner);
  return run_hybrid_analysis(xm, ctx);
}

XValidation validate_response(const ResponseMatrix& response,
                              const XMatrix& declared,
                              Diagnostics* diags) {
  XH_REQUIRE(declared.geometry() == response.geometry(),
             "declared X matrix geometry must match the response");
  XH_REQUIRE(declared.num_patterns() == response.num_patterns(),
             "declared X matrix pattern count must match the response");

  // Transpose the sparse declaration into per-pattern rows once, then
  // classify each pattern with three word-level bit operations.
  const std::size_t num_cells = response.num_cells();
  std::vector<BitVec> declared_rows(response.num_patterns(),
                                    BitVec(num_cells));
  for (const std::size_t cell : declared.x_cells()) {
    for (const std::size_t p : declared.patterns_of(cell).set_bits()) {
      declared_rows[p].set(cell);
    }
  }

  XValidation v;
  for (std::size_t p = 0; p < response.num_patterns(); ++p) {
    const BitVec observed = response.x_row(p);
    const BitVec& predicted = declared_rows[p];
    v.confirmed_x += kernels::and_count(observed, predicted);
    v.undeclared_x += kernels::and_not_count(observed, predicted);
    v.missing_x += kernels::and_not_count(predicted, observed);
    if (diags != nullptr) {
      BitVec undeclared = observed;
      undeclared.and_not(predicted);
      BitVec missing = predicted;
      missing.and_not(observed);
      for (const std::size_t c : undeclared.set_bits()) {
        diags->error(DiagKind::kUndeclaredX,
                     "pattern " + std::to_string(p) + " cell " +
                         std::to_string(c),
                     "response captures X where the declaration predicts a "
                     "deterministic value");
      }
      for (const std::size_t c : missing.set_bits()) {
        diags->warn(DiagKind::kMissingX,
                    "pattern " + std::to_string(p) + " cell " +
                        std::to_string(c),
                    "declared X resolved to a deterministic value");
      }
    }
  }
  const std::uint64_t entries =
      static_cast<std::uint64_t>(response.num_patterns()) * num_cells;
  v.deterministic = entries - v.confirmed_x - v.undeclared_x - v.missing_x;
  return v;
}

namespace {

/// Shared simulation core. @p trusting means @p xm was derived from the
/// response itself, so mismatch checks degenerate to library-bug assertions.
HybridSimulation simulate(const ResponseMatrix& response, const XMatrix& xm,
                          PipelineContext& ctx, bool trusting) {
  const ScopedSpan sim_span(ctx.trace(), "simulation");
  Diagnostics* diags = ctx.collector();
  HybridSimulation sim;
  sim.report = run_hybrid_analysis(xm, ctx);
  sim.masked_response = response;

  {
    const ScopedSpan validate_span(ctx.trace(), "validate");
    if (trusting) {
      sim.validation.confirmed_x = xm.total_x();
      sim.validation.deterministic =
          static_cast<std::uint64_t>(response.num_patterns()) *
              response.num_cells() -
          sim.validation.confirmed_x;
    } else {
      sim.validation = validate_response(response, xm, diags);
      if (!sim.validation.clean() && diags == nullptr) {
        // Strict mode with no collector attached is the one place core may
        // throw: the caller explicitly declined graceful degradation.
        // xh-lint: allow(XH-ERR-001)
        throw std::runtime_error(
            "x-validation failed: " +
            std::to_string(sim.validation.undeclared_x) + " undeclared and " +
            std::to_string(sim.validation.missing_x) +
            " missing X's between response and declaration (pass a "
            "Diagnostics collector to degrade gracefully)");
      }
    }
  }

  // Check the masks against what silicon actually returned BEFORE applying
  // them: a violation means a declared X resolved deterministic and the
  // mask will hide an observable value. Reported per cell, never absorbed.
  const PartitionResult& pr = sim.report.partitioning;
  {
    const ScopedSpan mask_span(ctx.trace(), "mask");
    sim.masked_observable =
        count_mask_violations(response, pr.partitions, pr.masks, ctx);
    sim.observability_preserved = sim.masked_observable == 0;
    if (sim.validation.clean()) {
      XH_ASSERT(sim.observability_preserved,
                "partition masks would destroy observable values");
    }
    for (std::size_t i = 0; i < pr.partitions.size(); ++i) {
      apply_mask(sim.masked_response, pr.partitions[i], pr.masks[i],
                 ctx.trace());
    }
  }

  const std::uint64_t remaining_x = sim.masked_response.total_x();
  if (sim.validation.clean()) {
    XH_ASSERT(remaining_x == pr.leaked_x,
              "leaked-X accounting disagrees with masked response");
  } else if (remaining_x != pr.leaked_x) {
    diag_report(diags, DiagSeverity::kWarning, DiagKind::kAccountingMismatch,
                "masked response",
                "declaration predicts " + std::to_string(pr.leaked_x) +
                    " leaked X's but " + std::to_string(remaining_x) +
                    " remain after masking");
  }

  sim.cancel = run_x_canceling(sim.masked_response, ctx);
  sim.x_entering_misr = sim.cancel.total_x_seen;
  sim.degraded = !sim.validation.clean() || sim.masked_observable > 0 ||
                 !sim.cancel.healthy();
  return sim;
}

}  // namespace

HybridSimulation run_hybrid_simulation(const ResponseMatrix& response,
                                       PipelineContext& ctx) {
  return simulate(response, XMatrix::from_response(response), ctx,
                  /*trusting=*/true);
}

HybridSimulation run_hybrid_simulation(const ResponseMatrix& response,
                                       const HybridConfig& cfg) {
  PipelineContext ctx(cfg.partitioner);
  return run_hybrid_simulation(response, ctx);
}

HybridSimulation run_hybrid_simulation(const ResponseMatrix& response,
                                       const XMatrix& declared,
                                       PipelineContext& ctx) {
  return simulate(response, declared, ctx, /*trusting=*/false);
}

HybridSimulation run_hybrid_simulation(const ResponseMatrix& response,
                                       const XMatrix& declared,
                                       const HybridConfig& cfg,
                                       Diagnostics* diags) {
  PipelineContext ctx(cfg.partitioner);
  ctx.adopt_collector(diags);
  return simulate(response, declared, ctx, /*trusting=*/false);
}

}  // namespace xh
