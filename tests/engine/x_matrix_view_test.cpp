#include "engine/x_matrix_view.hpp"

#include <gtest/gtest.h>

#include <cstddef>

#include "response/x_matrix.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

XMatrix random_matrix(std::uint64_t seed, std::size_t chains,
                      std::size_t length, std::size_t patterns,
                      double density) {
  WorkloadProfile profile;
  profile.name = "view-test";
  profile.geometry = {chains, length};
  profile.num_patterns = patterns;
  profile.x_density = density;
  profile.clustered_fraction = 0.5;
  profile.cluster_cells_mean = 4;
  profile.cluster_patterns_mean = 4;
  profile.seed = seed;
  return generate_workload(profile);
}

TEST(XMatrixView, SnapshotMatchesSourceMatrix) {
  const XMatrix xm = random_matrix(11, 6, 9, 70, 0.05);
  const XMatrixView view(xm);

  EXPECT_EQ(view.geometry(), xm.geometry());
  EXPECT_EQ(view.num_patterns(), xm.num_patterns());
  EXPECT_EQ(view.num_cells(), xm.num_cells());
  EXPECT_EQ(view.total_x(), xm.total_x());
  EXPECT_EQ(view.num_rows(), xm.x_cells().size());

  const auto cells = xm.x_cells();
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < view.num_rows(); ++r) {
    EXPECT_EQ(view.cell_id(r), cells[r]);
    const BitVec& pats = xm.patterns_of(cells[r]);
    EXPECT_EQ(view.x_count(r), pats.count());
    total += view.x_count(r);
    // Row words reproduce the source pattern set bit for bit.
    for (std::size_t w = 0; w < view.words_per_row(); ++w) {
      EXPECT_EQ(view.row_words(r)[w], pats.word(w));
    }
  }
  EXPECT_EQ(total, view.total_x());
}

TEST(XMatrixView, CountAndHashAgreeWithBitVecFormulation) {
  const XMatrix xm = random_matrix(23, 4, 8, 130, 0.08);
  const XMatrixView view(xm);
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    BitVec subset(xm.num_patterns());
    for (std::size_t p = 0; p < subset.size(); ++p) {
      if (rng.chance(0.5)) subset.set(p);
    }
    for (std::size_t r = 0; r < view.num_rows(); ++r) {
      const BitVec& pats = xm.patterns_of(view.cell_id(r));
      EXPECT_EQ(view.count_in(r, subset), and_count(pats, subset));
      BitVec expect = pats & subset;
      BitVec got;
      view.intersect_into(r, subset, &got);
      EXPECT_TRUE(got == expect);
    }
  }
}

TEST(XMatrixView, SnapshotIsIndependentOfSourceMutation) {
  XMatrix xm = random_matrix(5, 3, 5, 40, 0.1);
  const XMatrixView view(xm);
  const std::uint64_t before = view.total_x();
  xm.add_x(0, 0);
  xm.add_x(1, 1);
  EXPECT_EQ(view.total_x(), before);
}

TEST(XMatrixView, EmptyMatrixHasNoRows) {
  const XMatrix xm({2, 4}, 10);
  const XMatrixView view(xm);
  EXPECT_EQ(view.num_rows(), 0u);
  EXPECT_EQ(view.total_x(), 0u);
}

}  // namespace
}  // namespace xh
