// Dense GF(2) matrix with Gaussian elimination that tracks row combinations.
//
// This is the algebraic engine behind the X-canceling MISR (Yang & Touba,
// TCAD 2012): each MISR bit is a linear combination of scan-cell symbols; the
// X-dependency part forms a matrix whose left null space (row combinations
// that XOR to zero) yields X-free signatures.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace xh {

/// Row-major dense matrix over GF(2).
class Gf2Matrix {
 public:
  Gf2Matrix() = default;

  /// rows × cols zero matrix.
  Gf2Matrix(std::size_t rows, std::size_t cols);

  /// Builds from explicit rows; all rows must share one size.
  explicit Gf2Matrix(std::vector<BitVec> rows);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return cols_; }

  const BitVec& row(std::size_t r) const;
  BitVec& row(std::size_t r);

  bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool value = true);

  void append_row(BitVec row);

  /// Parses rows from strings of '0'/'1' (e.g. {"1100", "0101"}).
  static Gf2Matrix from_strings(const std::vector<std::string>& rows);

  /// rank over GF(2) (destructive elimination on a copy).
  std::size_t rank() const;

  bool operator==(const Gf2Matrix& other) const = default;

  std::string to_string() const;

 private:
  std::size_t cols_ = 0;
  std::vector<BitVec> rows_;
};

/// Result of tracked Gaussian elimination.
///
/// `reduced.row(i)` equals the XOR of the original rows selected by
/// `combination[i]`. Rows with `reduced.row(i).none()` are members of the left
/// null space: XORing those original rows cancels every column — for the
/// X-canceling MISR this means an X-free signature combination.
struct Elimination {
  Gf2Matrix reduced;
  /// combination[i] is a BitVec over original row indices.
  std::vector<BitVec> combination;
  std::size_t rank = 0;

  /// Indices i with reduced.row(i) all-zero (null-space rows).
  std::vector<std::size_t> null_rows() const;
};

/// Forward Gaussian elimination with full row-combination tracking.
Elimination eliminate(const Gf2Matrix& m);

/// Convenience: the row combinations (over original rows) whose XOR is zero
/// in every column of @p m — i.e. a basis of the left null space.
std::vector<BitVec> x_free_combinations(const Gf2Matrix& m);

/// Solves A·x = b over GF(2). Returns one solution (free variables set to 0)
/// or nullopt when the system is inconsistent. @p b must have m.rows() bits;
/// the solution has m.cols() bits.
std::optional<BitVec> solve(const Gf2Matrix& m, const BitVec& b);

}  // namespace xh
