#include "misr/spatial_compactor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xh {
namespace {

TEST(SpatialCompactor, IdentityWhenChainsFit) {
  SpatialCompactor sc(4, 8);
  const auto out = sc.compact({Lv::k1, Lv::k0, Lv::kX, Lv::k1});
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[0], Lv::k1);
  EXPECT_EQ(out[1], Lv::k0);
  EXPECT_EQ(out[2], Lv::kX);
  EXPECT_EQ(out[3], Lv::k1);
  EXPECT_EQ(out[4], Lv::k0) << "unused stages read 0";
  EXPECT_EQ(sc.x_in(), 1u);
  EXPECT_EQ(sc.x_out(), 1u);
  EXPECT_EQ(sc.definite_bits_absorbed(), 0u);
}

TEST(SpatialCompactor, XorFoldsDefiniteValues) {
  SpatialCompactor sc(4, 2);
  // stage0 = c0 ^ c2, stage1 = c1 ^ c3.
  const auto out = sc.compact({Lv::k1, Lv::k0, Lv::k1, Lv::k1});
  EXPECT_EQ(out[0], Lv::k0);
  EXPECT_EQ(out[1], Lv::k1);
}

TEST(SpatialCompactor, XPoisonsItsStage) {
  SpatialCompactor sc(4, 2);
  const auto out = sc.compact({Lv::kX, Lv::k0, Lv::k1, Lv::k0});
  EXPECT_EQ(out[0], Lv::kX);
  EXPECT_EQ(out[1], Lv::k0);
  EXPECT_EQ(sc.definite_bits_absorbed(), 1u) << "c2's value is unreadable";
}

TEST(SpatialCompactor, TwoXsMergeIntoOne) {
  SpatialCompactor sc(4, 2);
  sc.compact({Lv::kX, Lv::k0, Lv::kX, Lv::k0});
  EXPECT_EQ(sc.x_in(), 2u);
  EXPECT_EQ(sc.x_out(), 1u) << "folded X's merge";
}

TEST(SpatialCompactor, CountersAccumulateAndReset) {
  SpatialCompactor sc(2, 2);
  sc.compact({Lv::kX, Lv::k0});
  sc.compact({Lv::kX, Lv::kX});
  EXPECT_EQ(sc.x_in(), 3u);
  EXPECT_EQ(sc.x_out(), 3u);
  sc.reset_counters();
  EXPECT_EQ(sc.x_in(), 0u);
  EXPECT_EQ(sc.x_out(), 0u);
}

TEST(SpatialCompactor, RejectsBadInput) {
  SpatialCompactor sc(3, 2);
  EXPECT_THROW(sc.compact({Lv::k0, Lv::k1}), std::invalid_argument);
  EXPECT_THROW(sc.compact({Lv::k0, Lv::kZ, Lv::k1}), std::invalid_argument);
  EXPECT_THROW(SpatialCompactor(0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace xh
