// Complete test-set generation: random phase with fault dropping, then
// deterministic PODEM top-up for the survivors.
#pragma once

#include <cstdint>

#include "atpg/podem.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/netlist.hpp"
#include "scan/scan_plan.hpp"
#include "scan/test_application.hpp"

namespace xh {

struct AtpgConfig {
  /// Random-fill patterns tried before deterministic generation.
  std::size_t random_patterns = 64;
  std::size_t backtrack_limit = 2000;
  std::uint64_t seed = 1;
  /// Drop random patterns that detect nothing new (test-set compaction).
  bool compact_random_phase = true;
  /// Fill PODEM don't-cares with random values (true, standard) or keep
  /// them as Lv::kX for a downstream stimulus decompressor (false; the
  /// random phase is skipped in that mode since random patterns have no
  /// don't-cares worth compressing).
  bool fill_dont_cares = true;
};

struct AtpgResult {
  std::vector<TestPattern> patterns;
  std::vector<StuckFault> faults;      // the collapsed universe targeted
  std::vector<bool> detected;          // per fault
  std::size_t num_detected = 0;
  std::size_t num_untestable = 0;      // PODEM exhausted the search space
  std::size_t num_aborted = 0;         // backtrack limit hit

  double coverage() const {
    return faults.empty() ? 0.0
                          : static_cast<double>(num_detected) /
                                static_cast<double>(faults.size());
  }
};

/// Generates a pattern set for the collapsed stuck-at universe of @p nl.
AtpgResult generate_test_set(const Netlist& nl, const ScanPlan& plan,
                             const AtpgConfig& cfg);

}  // namespace xh
