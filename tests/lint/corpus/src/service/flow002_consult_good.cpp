// XH-FLOW-002 non-firing fixture: every iteration path passes the token
// check before blocking, so cancellation is honored within one poll.
#include <cstddef>

namespace xh {

class CancelToken {
 public:
  bool stop_requested() const;
};

void sleep_ns(std::size_t ns);
void poll_shard(std::size_t shard);

void sweep_shards(const CancelToken& token, std::size_t shards) {
  for (std::size_t i = 0; i < shards; ++i) {
    if (token.stop_requested()) break;
    poll_shard(i);
    sleep_ns(1000);
  }
}

}  // namespace xh
