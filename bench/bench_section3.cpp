// Regenerates the Section 3 X-value correlation analysis on the CKT-B-class
// workload (the paper's example circuit: 36,075 scan cells, 3000 patterns).
//
// Published reference points:
//   * only 3,903 of 36,075 cells capture X's; 90 % of X's sit in 4.9 % of
//     the cells,
//   * 177 cells capture exactly 406 X's, 172 of them under the SAME 406
//     patterns (a giant identical-pattern-set cluster).
// The synthetic workload will not hit those numbers digit-for-digit, but the
// same analysis must exhibit the same structure: heavy concentration and
// large identical-pattern-set clusters.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "response/x_stats.hpp"
#include "util/table.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

void print_section3() {
  const XMatrix xm = generate_workload(ckt_b_profile());
  const XStatistics stats = compute_x_statistics(xm);

  std::printf("== Section 3: X-value correlation analysis (CKT-B class) ==\n");
  std::printf("scan cells:            %zu\n", stats.num_cells);
  std::printf("patterns:              %zu\n", stats.num_patterns);
  std::printf("total X's:             %zu (density %.2f%%)\n", stats.total_x,
              stats.x_density * 100.0);
  std::printf("X-capturing cells:     %zu (%.1f%% of cells; paper: 3903)\n",
              stats.x_capturing_cells,
              100.0 * static_cast<double>(stats.x_capturing_cells) /
                  static_cast<double>(stats.num_cells));
  std::printf(
      "90%% of X's captured by: %.1f%% of all cells (paper: 4.9%%)\n",
      100.0 * stats.cell_fraction_covering(0.9));
  std::printf("50%% of X's captured by: %.1f%% of all cells\n",
              100.0 * stats.cell_fraction_covering(0.5));

  const XHistogramBucket bucket = stats.largest_bucket();
  std::printf(
      "\nlargest same-X-count group: %zu cells with exactly %zu X's "
      "(paper: 177 cells with 406 X's)\n",
      bucket.num_cells, bucket.x_count);

  const auto clusters = find_x_clusters(xm);
  TextTable t({"cluster", "cells", "X's per cell", "total X's"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, clusters.size()); ++i) {
    t.add_row({std::to_string(i + 1),
               std::to_string(clusters[i].cells.size()),
               std::to_string(clusters[i].x_count()),
               std::to_string(clusters[i].total_x())});
  }
  std::printf(
      "\nlargest identical-pattern-set clusters (paper: 172 cells sharing "
      "the same 406 patterns):\n%s\n",
      t.render().c_str());
}

void BM_ComputeXStatistics(benchmark::State& state) {
  const XMatrix xm =
      generate_workload(scaled_profile(ckt_b_profile(), 0.25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_x_statistics(xm));
  }
}

void BM_FindXClusters(benchmark::State& state) {
  const XMatrix xm =
      generate_workload(scaled_profile(ckt_b_profile(), 0.25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_x_clusters(xm));
  }
}

BENCHMARK(BM_ComputeXStatistics)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FindXClusters)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::print_section3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
