// Ablation E — stimulus-side compression sweep: seed length vs encodability
// and compression ratio for PODEM pattern sets with don't-cares, plus timing
// of expansion and seed solving. Complements the paper's response-side story
// with the stimulus side its introduction pairs it with.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "atpg/test_generation.hpp"
#include "netlist/generator.hpp"
#include "stimulus/decompressor.hpp"
#include "util/table.hpp"

namespace xh {
namespace {

struct Prepared {
  Netlist nl;
  ScanPlan plan;
  std::vector<TestPattern> patterns;
};

const Prepared& prepared() {
  static const Prepared p = [] {
    GeneratorConfig gcfg;
    gcfg.seed = 4242;
    gcfg.num_gates = 500;
    gcfg.num_dffs = 256;
    gcfg.nonscan_fraction = 0.05;
    Netlist nl = generate_circuit(gcfg);
    ScanPlan plan = ScanPlan::build(nl, 8);
    AtpgConfig acfg;
    acfg.random_patterns = 0;
    acfg.fill_dont_cares = false;
    acfg.seed = 9;
    AtpgResult atpg = generate_test_set(nl, plan, acfg);
    return Prepared{std::move(nl), std::move(plan),
                    std::move(atpg.patterns)};
  }();
  return p;
}

void print_sweep() {
  const Prepared& p = prepared();
  std::size_t max_care = 0;
  std::uint64_t total_care = 0;
  for (const auto& pat : p.patterns) {
    std::size_t care = 0;
    for (const Lv v : pat.scan_in) care += is_definite(v) ? 1u : 0u;
    max_care = std::max(max_care, care);
    total_care += care;
  }
  std::printf(
      "== Ablation E: LFSR-reseeding stimulus compression ==\n"
      "%zu PODEM patterns over %zu scan cells; care bits: avg %.1f, max %zu\n",
      p.patterns.size(), p.plan.geometry().num_cells(),
      static_cast<double>(total_care) /
          static_cast<double>(p.patterns.empty() ? 1 : p.patterns.size()),
      max_care);

  TextTable t({"seed bits", "encoded", "failed", "compression",
               "seed data bits", "raw scan bits"});
  for (const std::size_t bits : {16u, 24u, 32u, 48u, 64u}) {
    const StimulusDecompressor decomp(FeedbackPolynomial::primitive(bits),
                                      p.plan.geometry(), 7);
    const CompressionResult r = compress_patterns(decomp, p.patterns);
    t.add_row({std::to_string(bits), std::to_string(r.seeds.size()),
               std::to_string(r.failed_patterns.size()),
               TextTable::num(r.compression_ratio(), 2) + "x",
               std::to_string(r.seed_data_bits),
               std::to_string(r.raw_scan_bits)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Expected: encodability collapses once care bits approach the seed\n"
      "length and saturates above it; compression ratio = cells / seed.\n\n");
}

void BM_Expand(benchmark::State& state) {
  const Prepared& p = prepared();
  const StimulusDecompressor decomp(
      FeedbackPolynomial::primitive(static_cast<std::size_t>(state.range(0))),
      p.plan.geometry(), 7);
  BitVec seed(decomp.seed_bits());
  seed.set(1);
  seed.set(decomp.seed_bits() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp.expand(seed));
  }
}

void BM_SolveSeed(benchmark::State& state) {
  const Prepared& p = prepared();
  const StimulusDecompressor decomp(FeedbackPolynomial::primitive(64),
                                    p.plan.geometry(), 7);
  // Use the densest pattern as the workload.
  const TestPattern* densest = &p.patterns.front();
  std::size_t best = 0;
  for (const auto& pat : p.patterns) {
    std::size_t care = 0;
    for (const Lv v : pat.scan_in) care += is_definite(v) ? 1u : 0u;
    if (care > best) {
      best = care;
      densest = &pat;
    }
  }
  BitVec mask(p.plan.geometry().num_cells());
  BitVec values(p.plan.geometry().num_cells());
  for (std::size_t cell = 0; cell < mask.size(); ++cell) {
    if (is_definite(densest->scan_in[cell])) {
      mask.set(cell);
      values.set(cell, densest->scan_in[cell] == Lv::k1);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp.solve_seed(mask, values));
  }
}

BENCHMARK(BM_Expand)->Arg(32)->Arg(64);
BENCHMARK(BM_SolveSeed)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
