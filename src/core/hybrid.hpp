// End-to-end hybrid X-handling pipeline and paper-style comparison report.
//
// Analysis mode consumes only X locations (scales to the Table 1 workloads);
// simulation mode additionally applies the masks to a dense response, streams
// it through a real X-canceling MISR, and checks the method's invariants
// (no observable value masked; every extracted signature bit X-free).
#pragma once

#include "core/partitioner.hpp"
#include "misr/x_cancel.hpp"
#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"

namespace xh {

struct HybridConfig {
  PartitionerConfig partitioner;  // includes the MisrConfig
};

/// The three columns of Table 1 plus the test-time model, for one workload.
struct HybridReport {
  // Workload facts.
  std::size_t num_patterns = 0;
  std::size_t num_chains = 0;
  std::size_t chain_length = 0;
  std::uint64_t total_x = 0;
  double x_density = 0.0;

  PartitionResult partitioning;

  // Control-bit volumes.
  std::uint64_t masking_only_bits = 0;   // [5]
  double canceling_only_bits = 0.0;      // [12]
  double proposed_bits = 0.0;            // this paper
  double improvement_over_masking = 0.0;    // [5] / proposed
  double improvement_over_canceling = 0.0;  // [12] / proposed

  // Normalized test time (time-multiplexed X-canceling MISR [11]).
  double test_time_canceling_only = 0.0;
  double test_time_proposed = 0.0;
  double test_time_improvement = 0.0;
};

/// Analysis-only pipeline (closed-form accounting on X locations).
HybridReport run_hybrid_analysis(const XMatrix& xm, const HybridConfig& cfg);

/// Full-simulation pipeline on a dense response.
struct HybridSimulation {
  HybridReport report;
  ResponseMatrix masked_response;    // after per-partition masking
  XCancelResult cancel;              // real MISR session on the masked data
  bool observability_preserved = false;
  std::uint64_t x_entering_misr = 0;  // post-spatial-compaction X count
};

HybridSimulation run_hybrid_simulation(const ResponseMatrix& response,
                                       const HybridConfig& cfg);

}  // namespace xh
