// XH-FLOW-002 fixture: a polling loop that sleeps every iteration but
// never consults the CancelToken it was handed — cancellation can only
// take effect after the full sweep completes.
#include <cstddef>

namespace xh {

class CancelToken {
 public:
  bool stop_requested() const;
};

void sleep_ns(std::size_t ns);
void poll_shard(std::size_t shard);

void sweep_shards(const CancelToken& token, std::size_t shards) {
  for (std::size_t i = 0; i < shards; ++i) {
    poll_shard(i);
    sleep_ns(1000);
  }
}

}  // namespace xh
