// Memory-mapped CSR backend: out-of-core XMatrixStore.
//
// MmapStore spills the CSR snapshot to a file and probes it through a
// read-only mmap, so the kernel's page cache — not the process heap — holds
// the row payload. A CKT-A-scale matrix whose CSR snapshot exceeds RAM
// still runs: cold rows fault in on demand and clean pages are reclaimable
// at any time, which is the property the bench smoke gate asserts
// (store.resident_bytes far below the CSR snapshot's).
//
// File layout (xh-xmm/1, host-endian, ephemeral per process):
//
//   [0, kPageSize)          header: magic, geometry, counts, section offsets
//   [cells_off, ...)        u64 cell id per row, ascending
//   [counts_off, ...)       u64 X count per row
//   [words_off, ...)        u64 row words, row-major, words_per_row each
//
// Every section starts on a kPageSize boundary so one row's payload spans
// the minimum number of pages; count_in/hash_in/intersect_into account the
// pages their row touches into store.pages_touched (a deterministic
// page-fault proxy, since the layout constant is fixed).
//
// The build follows the checkpoint codec's crash discipline: write to
// "<path>.tmp", then rename into place. By default the file is unlinked
// immediately after mapping (the mapping keeps it alive; the name can't
// leak), so the store needs no cleanup path. Unlike the RAM backends,
// construction does real I/O and throws std::ios_base::failure on any
// filesystem refusal — the service retry machinery already classifies that
// type as transient.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "response/geometry.hpp"
#include "response/x_matrix.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/bitvec.hpp"

namespace xh {

struct MmapStoreOptions {
  /// Backing-file path; the builder writes "<path>.tmp" then renames.
  std::string path;
  /// Keep the named file on disk after mapping (debugging aid); default
  /// unlinks it so the kernel reclaims the space when the store dies.
  bool keep_file = false;
};

class MmapStore final : public XMatrixStore {
 public:
  /// Section alignment of the backing file. A fixed constant (not the
  /// runtime page size) so pages_touched is machine-independent.
  static constexpr std::uint64_t kPageSize = 4096;

  /// Builds the backing file from @p xm and maps it read-only. Throws
  /// std::ios_base::failure when the filesystem refuses (transient to the
  /// service retry policy).
  MmapStore(const XMatrix& xm, const MmapStoreOptions& options);
  ~MmapStore() override;

  const char* backend_name() const override { return "mmap"; }
  const ScanGeometry& geometry() const override { return geometry_; }
  std::size_t num_patterns() const override { return num_patterns_; }
  std::uint64_t total_x() const override { return total_x_; }

  std::size_t num_rows() const override { return num_rows_; }
  std::size_t cell_id(std::size_t row) const override {
    return static_cast<std::size_t>(cells_[row]);
  }
  std::size_t x_count(std::size_t row) const override {
    return static_cast<std::size_t>(counts_[row]);
  }

  std::size_t count_in(std::size_t row,
                       const BitVec& patterns) const override;
  std::uint64_t hash_in(std::size_t row,
                        const BitVec& patterns) const override;
  void intersect_into(std::size_t row, const BitVec& patterns,
                      BitVec* out) const override;

  std::size_t words_per_row() const { return words_per_row_; }
  /// Size of the mapped backing file.
  std::uint64_t file_bytes() const { return file_bytes_; }

 protected:
  /// Heap footprint: the mapped payload lives in reclaimable page cache,
  /// not process-owned memory, so only the object's own bookkeeping counts.
  std::uint64_t resident_bytes() const override { return sizeof(MmapStore); }
  std::uint64_t mapped_bytes() const override { return file_bytes_; }

 private:
  const std::uint64_t* row_words(std::size_t row) const {
    return words_ + row * words_per_row_;
  }
  /// Pages spanned by row @p row's word payload (the page-fault proxy).
  void note_row_pages(std::size_t row) const;

  ScanGeometry geometry_;
  std::size_t num_patterns_ = 0;
  std::size_t words_per_row_ = 0;
  std::uint64_t total_x_ = 0;
  std::size_t num_rows_ = 0;

  void* map_ = nullptr;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t words_off_ = 0;
  const std::uint64_t* cells_ = nullptr;
  const std::uint64_t* counts_ = nullptr;
  const std::uint64_t* words_ = nullptr;
};

}  // namespace xh
